//! The checking and lowering pass: surface grammar → checked grammar.
//!
//! Implements §3.2 of the paper:
//!
//! 1. compute `def(A)` for every nonterminal (attributes defined in *all*
//!    alternatives; `{val}` for builtins; the declared attributes for
//!    blackboxes);
//! 2. verify that every reference `B.id` / `B(e).id` satisfies
//!    `id ∈ def(B)` (plus the special attributes `start`/`end`), and that
//!    every plain reference `id` is defined in the same alternative or — in
//!    a local rule — may be inherited from the invoking alternative;
//! 3. build the per-alternative dependency graph, reject cycles, and
//!    reorder terms topologically.
//!
//! Lowering resolves each sibling reference to a concrete *term
//! occurrence* (nearest preceding occurrence in written order, falling back
//! to the nearest following occurrence for forward references), so repeated
//! nonterminals in one alternative — `Int[0,4] {o=Int.val} Int[4,8]
//! {l=Int.val}` — bind exactly as the paper's examples intend.

use super::depgraph::DepGraph;
use super::{
    CAlt, CExpr, CInterval, CRule, CRuleBody, CSwitchCase, CTerm, CTermKind, Grammar, NtId,
};
use crate::env::wellknown;
use crate::error::{Error, Result};
use crate::intern::Sym;
use crate::syntax::{self, Builtin, Expr, Reference, RuleBody, Term};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Checks and lowers a surface grammar. See the module docs.
///
/// # Errors
///
/// Returns [`Error::Grammar`] for structural problems (no rules, duplicate
/// or missing rules, unknown blackboxes, reserved attribute names) and
/// [`Error::Check`] for attribute-checking failures (undefined references,
/// cyclic dependencies).
pub fn check(surface: syntax::Grammar) -> Result<Grammar> {
    Checker::new(surface)?.run()
}

/// Kind of a nonterminal occurrence within an alternative.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OccKind {
    /// A `B[..]` symbol term, or a switch term with a case for `B`.
    Symbol,
    /// A `for … do B[..]` array term.
    Array,
}

#[derive(Clone, Debug)]
struct Occurrence {
    term: usize,
    name: String,
    kind: OccKind,
}

struct Checker {
    surface: syntax::Grammar,
    nt_by_name: HashMap<String, NtId>,
    /// `def(A)` by rule name, computed before lowering.
    def_by_name: HashMap<String, HashSet<String>>,
    interner: crate::intern::Interner,
}

/// Per-alternative lowering state.
struct AltState {
    /// Terms of the alternative in written order (cloned from the surface).
    attr_defs: HashMap<String, usize>,
    occurrences: Vec<Occurrence>,
    deps: DepGraph,
    /// The written index of the term currently being lowered.
    current: usize,
    /// Loop/existential variables currently in scope.
    bound: Vec<String>,
    /// When lowering an attribute definition `{x = e}`, the name `x`: a
    /// reference to `x` inside `e` is *shadowing* — in a local rule it
    /// reads the inherited binding from the invoking alternative (this is
    /// how counted lists like DNS question sections decrement a counter
    /// down a recursive chain).
    defining: Option<String>,
}

impl Checker {
    fn new(surface: syntax::Grammar) -> Result<Self> {
        if surface.rules.is_empty() {
            return Err(Error::Grammar("grammar has no rules".into()));
        }
        let mut nt_by_name = HashMap::new();
        for (i, rule) in surface.rules.iter().enumerate() {
            if nt_by_name.insert(rule.name.clone(), NtId(i as u32)).is_some() {
                return Err(Error::Grammar(format!(
                    "duplicate rule for nonterminal `{}`",
                    rule.name
                )));
            }
        }
        Ok(Checker {
            nt_by_name,
            def_by_name: HashMap::new(),
            interner: wellknown::seeded_interner(),
            surface,
        })
    }

    fn run(mut self) -> Result<Grammar> {
        self.compute_def_sets()?;

        let start_name =
            self.surface.start_name().expect("non-empty grammar has a start").to_owned();
        let start = *self.nt_by_name.get(&start_name).ok_or_else(|| {
            Error::Grammar(format!("start nonterminal `{start_name}` has no rule"))
        })?;

        let surface_rules = self.surface.rules.clone();
        let mut rules = Vec::with_capacity(surface_rules.len());
        for rule in &surface_rules {
            rules.push(self.lower_rule(rule)?);
        }

        compute_consumes_terminal(&mut rules);

        Ok(Grammar {
            rules,
            nt_by_name: self.nt_by_name,
            interner: self.interner,
            start,
            blackboxes: self.surface.blackboxes.clone(),
            surface: self.surface,
        })
    }

    /// Step 1 of attribute checking: `def(A)` per rule.
    fn compute_def_sets(&mut self) -> Result<()> {
        for rule in &self.surface.rules {
            let defs: HashSet<String> = match &rule.body {
                RuleBody::Builtin(_) => ["val".to_owned()].into(),
                RuleBody::Blackbox(name) => {
                    let bb = self.surface.blackboxes.iter().find(|b| &b.name == name).ok_or_else(
                        || {
                            Error::Grammar(format!(
                                "rule `{}` references unregistered blackbox `{name}`",
                                rule.name
                            ))
                        },
                    )?;
                    bb.attrs.iter().cloned().collect()
                }
                RuleBody::Alts(alts) => {
                    if alts.is_empty() {
                        return Err(Error::Grammar(format!(
                            "rule `{}` has no alternatives",
                            rule.name
                        )));
                    }
                    let mut iter = alts.iter().map(alt_defined_attrs);
                    let first = iter.next().expect("non-empty alternatives");
                    iter.fold(first, |acc, set| &acc & &set)
                }
            };
            for reserved in ["start", "end", "EOI"] {
                if defs.contains(reserved) {
                    return Err(Error::Grammar(format!(
                        "rule `{}` defines reserved attribute `{reserved}`",
                        rule.name
                    )));
                }
            }
            self.def_by_name.insert(rule.name.clone(), defs);
        }
        Ok(())
    }

    fn lower_rule(&mut self, rule: &syntax::Rule) -> Result<CRule> {
        let def_attrs: Vec<Sym> = {
            let mut names: Vec<&String> = self.def_by_name[&rule.name].iter().collect();
            names.sort();
            names.iter().map(|n| self.interner.intern(n)).collect()
        };
        let body = match &rule.body {
            RuleBody::Builtin(b) => CRuleBody::Builtin(*b),
            RuleBody::Blackbox(name) => {
                let idx = self
                    .surface
                    .blackboxes
                    .iter()
                    .position(|b| &b.name == name)
                    .expect("validated in compute_def_sets");
                CRuleBody::Blackbox(idx)
            }
            RuleBody::Alts(alts) => {
                let mut lowered = Vec::with_capacity(alts.len());
                for alt in alts {
                    lowered.push(self.lower_alt(rule, alt)?);
                }
                CRuleBody::Alts(lowered)
            }
        };
        Ok(CRule {
            name: Arc::from(rule.name.as_str()),
            name_sym: self.interner.intern(&rule.name),
            body,
            is_local: rule.is_local,
            def_attrs,
            consumes_terminal: false, // filled by compute_consumes_terminal
        })
    }

    fn lower_alt(&mut self, rule: &syntax::Rule, alt: &syntax::Alternative) -> Result<CAlt> {
        let n = alt.terms.len();
        let mut state = AltState {
            attr_defs: HashMap::new(),
            occurrences: Vec::new(),
            deps: DepGraph::new(n),
            current: 0,
            bound: Vec::new(),
            defining: None,
        };
        // Pass 1: collect attribute definitions and nonterminal occurrences.
        for (i, term) in alt.terms.iter().enumerate() {
            match term {
                Term::AttrDef { name, .. } => {
                    if state.attr_defs.insert(name.clone(), i).is_some() {
                        return Err(Error::Check(format!(
                            "rule `{}`: attribute `{name}` defined twice in one alternative",
                            rule.name
                        )));
                    }
                    if ["start", "end", "EOI"].contains(&name.as_str()) {
                        return Err(Error::Grammar(format!(
                            "rule `{}` defines reserved attribute `{name}`",
                            rule.name
                        )));
                    }
                }
                Term::Symbol { name, .. } => state.occurrences.push(Occurrence {
                    term: i,
                    name: name.clone(),
                    kind: OccKind::Symbol,
                }),
                Term::Array { name, .. } | Term::Star { name, .. } => state
                    .occurrences
                    .push(Occurrence { term: i, name: name.clone(), kind: OccKind::Array }),
                Term::Switch { cases, default } => {
                    for case in cases.iter().chain(std::iter::once(default.as_ref())) {
                        state.occurrences.push(Occurrence {
                            term: i,
                            name: case.name.clone(),
                            kind: OccKind::Symbol,
                        });
                    }
                }
                Term::Terminal { .. } | Term::Predicate { .. } => {}
            }
        }

        // Pass 2: lower every term, resolving references and recording
        // dependency edges.
        let mut kinds = Vec::with_capacity(n);
        for (i, term) in alt.terms.iter().enumerate() {
            state.current = i;
            kinds.push(self.lower_term(rule, term, &mut state)?);
        }

        // Pass 3: the dependency graph must be a DAG; reorder terms.
        let order = state.deps.topo_order().map_err(|cycle| {
            let members: Vec<String> =
                cycle.iter().map(|&i| format!("term #{i} ({})", alt.terms[i])).collect();
            Error::Check(format!(
                "rule `{}`: cyclic attribute dependencies among {}",
                rule.name,
                members.join(", ")
            ))
        })?;

        let mut terms: Vec<CTerm> = Vec::with_capacity(n);
        let mut by_index: Vec<Option<CTermKind>> = kinds.into_iter().map(Some).collect();
        for &i in &order {
            terms.push(CTerm {
                orig_index: i,
                kind: by_index[i].take().expect("each term placed once"),
            });
        }
        Ok(CAlt { terms, n_terms: n })
    }

    fn lower_term(
        &mut self,
        rule: &syntax::Rule,
        term: &Term,
        state: &mut AltState,
    ) -> Result<CTermKind> {
        match term {
            Term::Symbol { name, interval } => {
                let nt = self.resolve_nt(rule, name)?;
                let interval = self.lower_interval(rule, interval, state)?;
                Ok(CTermKind::Symbol { nt, interval })
            }
            Term::Terminal { bytes, interval } => {
                let interval = self.lower_interval(rule, interval, state)?;
                Ok(CTermKind::Terminal { bytes: Arc::from(bytes.as_slice()), interval })
            }
            Term::AttrDef { name, expr } => {
                let attr = self.interner.intern(name);
                state.defining = Some(name.clone());
                let expr = self.lower_expr(rule, expr, state);
                state.defining = None;
                Ok(CTermKind::AttrDef { attr, expr: expr? })
            }
            Term::Predicate { expr } => {
                let expr = self.lower_expr(rule, expr, state)?;
                Ok(CTermKind::Predicate { expr })
            }
            Term::Array { var, from, to, name, interval } => {
                check_var_not_reserved(rule, var)?;
                let nt = self.resolve_nt(rule, name)?;
                let from = self.lower_expr(rule, from, state)?;
                let to = self.lower_expr(rule, to, state)?;
                let var_sym = self.interner.intern(var);
                state.bound.push(var.clone());
                let interval = self.lower_interval(rule, interval, state);
                state.bound.pop();
                Ok(CTermKind::Array { var: var_sym, from, to, nt, interval: interval? })
            }
            Term::Star { name, interval } => {
                let nt = self.resolve_nt(rule, name)?;
                let interval = self.lower_interval(rule, interval, state)?;
                Ok(CTermKind::Star { nt, interval })
            }
            Term::Switch { cases, default } => {
                let mut lowered = Vec::with_capacity(cases.len() + 1);
                for case in cases {
                    let cond = case.cond.as_ref().expect("non-default case has a guard");
                    lowered.push(CSwitchCase {
                        cond: Some(self.lower_expr(rule, cond, state)?),
                        nt: self.resolve_nt(rule, &case.name)?,
                        interval: self.lower_interval(rule, &case.interval, state)?,
                    });
                }
                if default.cond.is_some() {
                    return Err(Error::Grammar(format!(
                        "rule `{}`: switch default case must not have a guard",
                        rule.name
                    )));
                }
                lowered.push(CSwitchCase {
                    cond: None,
                    nt: self.resolve_nt(rule, &default.name)?,
                    interval: self.lower_interval(rule, &default.interval, state)?,
                });
                Ok(CTermKind::Switch { cases: lowered })
            }
        }
    }

    fn lower_interval(
        &mut self,
        rule: &syntax::Rule,
        interval: &syntax::Interval,
        state: &mut AltState,
    ) -> Result<CInterval> {
        Ok(CInterval {
            lo: self.lower_expr(rule, &interval.lo, state)?,
            hi: self.lower_expr(rule, &interval.hi, state)?,
        })
    }

    fn resolve_nt(&self, rule: &syntax::Rule, name: &str) -> Result<NtId> {
        self.nt_by_name.get(name).copied().ok_or_else(|| {
            Error::Grammar(format!(
                "rule `{}` references undefined nonterminal `{name}`",
                rule.name
            ))
        })
    }

    /// Nearest occurrence of `name` with the given kind: the closest one
    /// strictly before the current term, else the closest one after it. A
    /// term's own occurrence is never a candidate — `U8[U8.end, EOI]`
    /// refers to the *previous* `U8`, which is what implicit-interval
    /// completion relies on.
    fn resolve_occurrence(
        &self,
        state: &AltState,
        name: &str,
        kind: OccKind,
    ) -> Option<(usize, OccKind)> {
        let mut best_before: Option<usize> = None;
        let mut best_after: Option<usize> = None;
        for occ in &state.occurrences {
            if occ.name != name || occ.kind != kind || occ.term == state.current {
                continue;
            }
            if occ.term < state.current {
                best_before = Some(occ.term); // occurrences are in order
            } else if best_after.is_none() {
                best_after = Some(occ.term);
            }
        }
        best_before.or(best_after).map(|t| (t, kind))
    }

    /// Verifies `attr ∈ def(B) ∪ {start, end}`.
    fn check_attr_defined(&self, rule: &syntax::Rule, nt_name: &str, attr: &str) -> Result<()> {
        if attr == "start" || attr == "end" {
            return Ok(());
        }
        let defs = self.def_by_name.get(nt_name).ok_or_else(|| {
            Error::Grammar(format!(
                "rule `{}` references undefined nonterminal `{nt_name}`",
                rule.name
            ))
        })?;
        if defs.contains(attr) {
            Ok(())
        } else {
            Err(Error::Check(format!(
                "rule `{}`: reference to `{nt_name}.{attr}` but `{attr}` ∉ def({nt_name})",
                rule.name
            )))
        }
    }

    fn lower_expr(
        &mut self,
        rule: &syntax::Rule,
        expr: &Expr,
        state: &mut AltState,
    ) -> Result<CExpr> {
        Ok(match expr {
            Expr::Num(n) => CExpr::Num(*n),
            Expr::Bin(op, a, b) => CExpr::Bin(
                *op,
                Box::new(self.lower_expr(rule, a, state)?),
                Box::new(self.lower_expr(rule, b, state)?),
            ),
            Expr::Cond(c, t, e) => CExpr::Cond(
                Box::new(self.lower_expr(rule, c, state)?),
                Box::new(self.lower_expr(rule, t, state)?),
                Box::new(self.lower_expr(rule, e, state)?),
            ),
            Expr::Ref(Reference::Eoi) => CExpr::Eoi,
            Expr::Ref(Reference::Local(id)) => {
                let sym = self.interner.intern(id);
                if state.bound.iter().any(|b| b == id) {
                    CExpr::Local(sym)
                } else if state.defining.as_deref() == Some(id.as_str()) {
                    // `{x = … x …}` — shadowing. In a local rule this reads
                    // the invoking alternative's `x` at parse time (the own
                    // binding does not exist yet when the definition is
                    // evaluated); elsewhere there is nothing to inherit.
                    if rule.is_local {
                        CExpr::Local(sym)
                    } else {
                        return Err(Error::Check(format!(
                            "rule `{}`: attribute `{id}` is defined in terms of itself \
                             (only local rules may shadow an inherited attribute)",
                            rule.name
                        )));
                    }
                } else if let Some(&def_term) = state.attr_defs.get(id) {
                    state.deps.add_dep(state.current, def_term);
                    CExpr::Local(sym)
                } else if rule.is_local {
                    // May be inherited from the invoking alternative;
                    // resolved through the context chain at parse time.
                    CExpr::Local(sym)
                } else {
                    return Err(Error::Check(format!(
                        "rule `{}`: reference to undefined attribute `{id}`",
                        rule.name
                    )));
                }
            }
            Expr::Ref(Reference::Attr { nt, attr }) => {
                self.check_attr_defined(rule, nt, attr)?;
                let nt_id = self.resolve_nt(rule, nt)?;
                let attr_sym = self.interner.intern(attr);
                // Prefer a plain symbol occurrence; fall back to an
                // array/star occurrence, where `B.attr` means the *last*
                // element's attribute (so `star Item "trail"` sequences
                // naturally via Item.end).
                if let Some((term, _)) = self
                    .resolve_occurrence(state, nt, OccKind::Symbol)
                    .or_else(|| self.resolve_occurrence(state, nt, OccKind::Array))
                {
                    state.deps.add_dep(state.current, term);
                    CExpr::NtAttr { term, nt: nt_id, attr: attr_sym }
                } else if rule.is_local {
                    CExpr::OuterAttr { nt: nt_id, attr: attr_sym }
                } else {
                    return Err(Error::Check(format!(
                        "rule `{}`: reference to `{nt}.{attr}` but `{nt}` does not occur \
                         in the same alternative",
                        rule.name
                    )));
                }
            }
            Expr::Ref(Reference::Elem { nt, index, attr }) => {
                self.check_attr_defined(rule, nt, attr)?;
                let nt_id = self.resolve_nt(rule, nt)?;
                let attr_sym = self.interner.intern(attr);
                let index = Box::new(self.lower_expr(rule, index, state)?);
                if let Some((term, _)) = self.resolve_occurrence(state, nt, OccKind::Array) {
                    state.deps.add_dep(state.current, term);
                    CExpr::ElemAttr { term, nt: nt_id, index, attr: attr_sym }
                } else if rule.is_local {
                    CExpr::OuterElem { nt: nt_id, index, attr: attr_sym }
                } else {
                    return Err(Error::Check(format!(
                        "rule `{}`: reference to `{nt}({}).{attr}` but no array of `{nt}` \
                         occurs in the same alternative",
                        rule.name,
                        index_display(&index),
                    )));
                }
            }
            Expr::Exists { var, array, cond, then, els } => {
                check_var_not_reserved(rule, var)?;
                let nt_id = self.resolve_nt(rule, array)?;
                let var_sym = self.interner.intern(var);
                let term = match self.resolve_occurrence(state, array, OccKind::Array) {
                    Some((term, _)) => {
                        state.deps.add_dep(state.current, term);
                        Some(term)
                    }
                    None if rule.is_local => None,
                    None => {
                        return Err(Error::Check(format!(
                            "rule `{}`: existential over `{array}` but no array of \
                             `{array}` occurs in the same alternative",
                            rule.name
                        )));
                    }
                };
                state.bound.push(var.clone());
                let cond = self.lower_expr(rule, cond, state);
                let then = self.lower_expr(rule, then, state);
                state.bound.pop();
                let els = self.lower_expr(rule, els, state)?;
                CExpr::Exists {
                    var: var_sym,
                    term,
                    nt: nt_id,
                    cond: Box::new(cond?),
                    then: Box::new(then?),
                    els: Box::new(els),
                }
            }
        })
    }
}

/// Loop and existential variables may not shadow the special attributes:
/// the shadowing would interact inconsistently with `updStartEnd` (reads
/// see the innermost binding, widening writes the outermost), and the VM's
/// O(1) environment layout relies on the first three slots staying
/// `EOI`/`start`/`end`.
fn check_var_not_reserved(rule: &syntax::Rule, var: &str) -> Result<()> {
    if ["start", "end", "EOI"].contains(&var) {
        return Err(Error::Grammar(format!(
            "rule `{}` binds reserved attribute `{var}` as a loop variable",
            rule.name
        )));
    }
    Ok(())
}

fn index_display(e: &CExpr) -> String {
    match e {
        CExpr::Num(n) => n.to_string(),
        _ => "…".to_owned(),
    }
}

/// Attribute names defined by one alternative.
fn alt_defined_attrs(alt: &syntax::Alternative) -> HashSet<String> {
    alt.terms
        .iter()
        .filter_map(|t| match t {
            Term::AttrDef { name, .. } => Some(name.clone()),
            _ => None,
        })
        .collect()
}

/// Least-fixpoint computation of [`CRule::consumes_terminal`]: a rule
/// consumes at least one byte when every alternative contains a non-empty
/// terminal, a builtin of width ≥ 1, or a nonterminal that itself consumes.
fn compute_consumes_terminal(rules: &mut [CRule]) {
    let mut consumes = vec![false; rules.len()];
    loop {
        let mut changed = false;
        for (i, rule) in rules.iter().enumerate() {
            if consumes[i] {
                continue;
            }
            let now = match &rule.body {
                CRuleBody::Builtin(b) => !matches!(b, Builtin::Bytes),
                CRuleBody::Blackbox(_) => false, // conservative
                CRuleBody::Alts(alts) => alts.iter().all(|alt| {
                    alt.terms.iter().any(|t| match &t.kind {
                        CTermKind::Terminal { bytes, .. } => !bytes.is_empty(),
                        CTermKind::Symbol { nt, .. } => consumes[nt.0 as usize],
                        CTermKind::Switch { cases } => {
                            cases.iter().all(|c| consumes[c.nt.0 as usize])
                        }
                        // One-or-more: consumes iff the element does.
                        CTermKind::Star { nt, .. } => consumes[nt.0 as usize],
                        _ => false,
                    })
                }),
            };
            if now {
                consumes[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for (rule, c) in rules.iter_mut().zip(consumes) {
        rule.consumes_terminal = c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{AltBuilder, Expr, GrammarBuilder};

    fn fig2_grammar() -> syntax::Grammar {
        GrammarBuilder::new()
            .rule(
                "S",
                vec![AltBuilder::new()
                    .symbol("H", Expr::num(0), Expr::num(8))
                    .symbol(
                        "Data",
                        Expr::attr("H", "offset"),
                        Expr::attr("H", "offset") + Expr::attr("H", "length"),
                    )
                    .build()],
            )
            .rule(
                "H",
                vec![AltBuilder::new()
                    .symbol("Int", Expr::num(0), Expr::num(4))
                    .attr("offset", Expr::attr("Int", "val"))
                    .symbol("Int", Expr::num(4), Expr::num(8))
                    .attr("length", Expr::attr("Int", "val"))
                    .build()],
            )
            .builtin("Int", Builtin::U32Le)
            .builtin("Data", Builtin::Bytes)
            .build_unchecked()
    }

    #[test]
    fn fig2_checks_and_lowers() {
        let g = check(fig2_grammar()).unwrap();
        assert_eq!(g.nt_count(), 4);
        assert_eq!(g.start_nt_name(), "S");
        let h = g.rule(g.nt_id("H").unwrap());
        let offset = g.attr_sym("offset").unwrap();
        let length = g.attr_sym("length").unwrap();
        assert!(h.def_attrs.contains(&offset));
        assert!(h.def_attrs.contains(&length));
    }

    #[test]
    fn duplicate_nonterminal_references_bind_to_nearest_preceding() {
        let g = check(fig2_grammar()).unwrap();
        let h = g.rule(g.nt_id("H").unwrap());
        let CRuleBody::Alts(alts) = &h.body else { panic!("alts") };
        // Written order preserved (no forward refs): Int, {offset}, Int, {length}.
        let orig: Vec<usize> = alts[0].terms.iter().map(|t| t.orig_index).collect();
        assert_eq!(orig, vec![0, 1, 2, 3]);
        // {offset} refers to term 0, {length} to term 2.
        let get_term_ref = |i: usize| match &alts[0].terms[i].kind {
            CTermKind::AttrDef { expr: CExpr::NtAttr { term, .. }, .. } => *term,
            other => panic!("expected attr def with NtAttr, got {other:?}"),
        };
        assert_eq!(get_term_ref(1), 0);
        assert_eq!(get_term_ref(3), 2);
    }

    #[test]
    fn forward_reference_is_reordered() {
        // The paper's §3.2 example: B1[0, B2.a] B2[a1, EOI] {a1 = 2}.
        let g = GrammarBuilder::new()
            .rule(
                "A",
                vec![AltBuilder::new()
                    .symbol("B1", Expr::num(0), Expr::attr("B2", "a"))
                    .symbol("B2", Expr::local("a1"), Expr::eoi())
                    .attr("a1", Expr::num(2))
                    .build()],
            )
            .rule("B2", vec![AltBuilder::new().attr("a", Expr::num(1)).build()])
            .rule("B1", vec![AltBuilder::new().build()])
            .build_unchecked();
        let g = check(g).unwrap();
        let a = g.rule(g.nt_id("A").unwrap());
        let CRuleBody::Alts(alts) = &a.body else { panic!("alts") };
        let orig: Vec<usize> = alts[0].terms.iter().map(|t| t.orig_index).collect();
        assert_eq!(orig, vec![2, 1, 0], "reordered to {{a1=2}} B2 B1");
    }

    #[test]
    fn circular_dependency_is_rejected() {
        let g = GrammarBuilder::new()
            .rule(
                "A",
                vec![AltBuilder::new()
                    .symbol("B1", Expr::num(0), Expr::attr("B2", "a"))
                    .symbol("B2", Expr::attr("B1", "a"), Expr::eoi())
                    .build()],
            )
            .rule("B1", vec![AltBuilder::new().attr("a", Expr::num(1)).build()])
            .rule("B2", vec![AltBuilder::new().attr("a", Expr::num(1)).build()])
            .build_unchecked();
        let err = check(g).unwrap_err();
        assert!(matches!(err, Error::Check(_)), "got {err:?}");
        assert!(err.to_string().contains("cyclic"));
    }

    #[test]
    fn reference_to_undefined_attribute_is_rejected() {
        let g = GrammarBuilder::new()
            .rule(
                "S",
                vec![AltBuilder::new()
                    .symbol("H", Expr::num(0), Expr::num(4))
                    .symbol("D", Expr::attr("H", "nope"), Expr::eoi())
                    .build()],
            )
            .rule("H", vec![AltBuilder::new().attr("ofs", Expr::num(1)).build()])
            .rule("D", vec![AltBuilder::new().build()])
            .build_unchecked();
        let err = check(g).unwrap_err();
        assert!(err.to_string().contains("nope"), "got: {err}");
    }

    #[test]
    fn def_set_is_intersection_over_alternatives() {
        let g = GrammarBuilder::new()
            .rule(
                "A",
                vec![
                    AltBuilder::new().attr("x", Expr::num(1)).attr("y", Expr::num(2)).build(),
                    AltBuilder::new().attr("x", Expr::num(3)).build(),
                ],
            )
            .rule(
                "S",
                vec![AltBuilder::new()
                    .symbol("A", Expr::num(0), Expr::eoi())
                    .symbol("B", Expr::attr("A", "x"), Expr::eoi())
                    .build()],
            )
            .start("S")
            .rule("B", vec![AltBuilder::new().build()])
            .build_unchecked();
        // `x` is in def(A) — ok.
        check(g.clone()).unwrap();

        // `y` is not in def(A) (missing from the second alternative).
        let bad = GrammarBuilder::new()
            .rule(
                "A",
                vec![
                    AltBuilder::new().attr("x", Expr::num(1)).attr("y", Expr::num(2)).build(),
                    AltBuilder::new().attr("x", Expr::num(3)).build(),
                ],
            )
            .rule(
                "S",
                vec![AltBuilder::new()
                    .symbol("A", Expr::num(0), Expr::eoi())
                    .symbol("B", Expr::attr("A", "y"), Expr::eoi())
                    .build()],
            )
            .start("S")
            .rule("B", vec![AltBuilder::new().build()])
            .build_unchecked();
        assert!(check(bad).is_err());
    }

    #[test]
    fn start_end_references_always_allowed() {
        let g = GrammarBuilder::new()
            .rule(
                "S",
                vec![AltBuilder::new()
                    .symbol("O", Expr::num(1), Expr::eoi())
                    .terminal(b"stop", Expr::attr("O", "end"), Expr::eoi())
                    .build()],
            )
            .rule("O", vec![AltBuilder::new().terminal(b"0", Expr::num(0), Expr::num(1)).build()])
            .build_unchecked();
        check(g).unwrap();
    }

    #[test]
    fn reserved_loop_variable_rejected() {
        // `for end = …` would shadow the special attribute: reads would
        // see the loop binding while `updStartEnd` writes the outer slot.
        let g = GrammarBuilder::new()
            .rule(
                "S",
                vec![AltBuilder::new()
                    .array("end", Expr::num(0), Expr::num(2), "A", Expr::num(0), Expr::eoi())
                    .build()],
            )
            .rule("A", vec![AltBuilder::new().build()])
            .build_unchecked();
        let err = check(g).unwrap_err();
        assert!(err.to_string().contains("reserved"), "got: {err}");
    }

    #[test]
    fn nt_names_are_interned() {
        let g = check(fig2_grammar()).unwrap();
        let h = g.nt_id("H").unwrap();
        assert_eq!(g.nt_sym("H"), Some(g.nt_name_sym(h)));
        assert!(g.nt_sym("Nope").is_none());
    }

    #[test]
    fn reserved_attribute_names_rejected() {
        let g = GrammarBuilder::new()
            .rule("S", vec![AltBuilder::new().attr("end", Expr::num(1)).build()])
            .build_unchecked();
        let err = check(g).unwrap_err();
        assert!(err.to_string().contains("reserved"));
    }

    #[test]
    fn unknown_nonterminal_rejected() {
        let g = GrammarBuilder::new()
            .rule("S", vec![AltBuilder::new().symbol("Ghost", Expr::num(0), Expr::eoi()).build()])
            .build_unchecked();
        let err = check(g).unwrap_err();
        assert!(err.to_string().contains("Ghost"));
    }

    #[test]
    fn duplicate_rule_rejected() {
        let g = GrammarBuilder::new()
            .rule("S", vec![AltBuilder::new().build()])
            .rule("S", vec![AltBuilder::new().build()])
            .build_unchecked();
        assert!(check(g).is_err());
    }

    #[test]
    fn consumes_terminal_fixpoint() {
        let g = GrammarBuilder::new()
            .rule(
                "Blocks",
                vec![
                    AltBuilder::new()
                        .symbol("Block", Expr::num(0), Expr::eoi())
                        .symbol("Blocks", Expr::attr("Block", "end"), Expr::eoi())
                        .build(),
                    AltBuilder::new().symbol("Block", Expr::num(0), Expr::eoi()).build(),
                ],
            )
            .rule(
                "Block",
                vec![AltBuilder::new().terminal(b"B", Expr::num(0), Expr::num(1)).build()],
            )
            .rule("Eps", vec![AltBuilder::new().build()])
            .build_unchecked();
        let g = check(g).unwrap();
        assert!(g.rule(g.nt_id("Block").unwrap()).consumes_terminal);
        assert!(g.rule(g.nt_id("Blocks").unwrap()).consumes_terminal);
        assert!(!g.rule(g.nt_id("Eps").unwrap()).consumes_terminal);
    }

    #[test]
    fn loop_variable_scoping() {
        let g = GrammarBuilder::new()
            .rule(
                "S",
                vec![AltBuilder::new()
                    .symbol("H", Expr::num(0), Expr::num(4))
                    .array(
                        "i",
                        Expr::num(0),
                        Expr::attr("H", "num"),
                        "A",
                        Expr::num(4) + Expr::local("i") * Expr::num(4),
                        Expr::num(8) + Expr::local("i") * Expr::num(4),
                    )
                    .build()],
            )
            .rule(
                "H",
                vec![AltBuilder::new()
                    .symbol("Int", Expr::num(0), Expr::num(4))
                    .attr("num", Expr::attr("Int", "val"))
                    .build()],
            )
            .rule("A", vec![AltBuilder::new().symbol("Int", Expr::num(0), Expr::num(4)).build()])
            .builtin("Int", Builtin::U32Le)
            .build_unchecked();
        check(g).unwrap();

        // Using the loop variable outside the array term is an error.
        let bad = GrammarBuilder::new()
            .rule(
                "S",
                vec![AltBuilder::new()
                    .array("i", Expr::num(0), Expr::num(2), "A", Expr::local("i"), Expr::eoi())
                    .attr("x", Expr::local("i"))
                    .build()],
            )
            .rule("A", vec![AltBuilder::new().build()])
            .build_unchecked();
        assert!(check(bad).is_err());
    }
}
