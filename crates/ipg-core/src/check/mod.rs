//! Attribute checking and lowering (§3.2 of the paper).
//!
//! [`check`] takes a surface [`crate::syntax::Grammar`] and produces a
//! [`Grammar`]: a *checked*, parse-ready representation in which
//!
//! * nonterminal names are resolved to dense [`NtId`]s and attribute names
//!   to interned [`Sym`]s;
//! * every attribute reference has been verified to refer to a defined
//!   attribute (`id ∈ def(B)` for `B.id` and `B(e).id`);
//! * every alternative's term dependency graph has been verified to be a
//!   DAG and its terms topologically reordered, so the interpreter can
//!   evaluate terms left to right;
//! * references `B.id` are bound to the *specific occurrence* of `B` they
//!   refer to (the nearest preceding occurrence in written order, or the
//!   nearest following one for forward references such as backward
//!   parsing), which makes rules with repeated nonterminals — like the
//!   ELF header's two `Int` fields — unambiguous even after reordering.

mod depgraph;
mod lower;

pub use depgraph::{build_dep_graph, DepGraph};
pub use lower::check;

use crate::blackbox::Blackbox;
use crate::env::wellknown;
use crate::intern::{Interner, Sym};
use crate::syntax::{BinOp, Builtin};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A nonterminal id, dense within one grammar.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NtId(pub u32);

impl fmt::Debug for NtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NtId({})", self.0)
    }
}

/// A checked, parse-ready grammar. Produced by [`check`] (or the
/// conveniences [`crate::frontend::parse_grammar`] and
/// [`crate::syntax::GrammarBuilder::build`]).
#[derive(Clone, Debug)]
pub struct Grammar {
    pub(crate) rules: Vec<CRule>,
    pub(crate) nt_by_name: HashMap<String, NtId>,
    pub(crate) interner: Interner,
    pub(crate) start: NtId,
    pub(crate) blackboxes: Vec<Blackbox>,
    /// The surface grammar this was lowered from (kept for pretty-printing,
    /// code generation comments, and the Table 2 interval statistics).
    pub(crate) surface: crate::syntax::Grammar,
}

/// A checked rule.
#[derive(Clone, Debug)]
pub struct CRule {
    /// Nonterminal name.
    pub name: Arc<str>,
    /// The nonterminal name interned in the grammar's interner. Parse-tree
    /// nodes carry this symbol so child lookups compare two `u32`s instead
    /// of strings (see [`crate::tree::Node::child_node_sym`]).
    pub name_sym: Sym,
    /// Right-hand side.
    pub body: CRuleBody,
    /// Whether this is a local (`where`) rule that inherits the invoking
    /// alternative's environment.
    pub is_local: bool,
    /// `def(A)`: attributes defined in *all* alternatives.
    pub def_attrs: Vec<Sym>,
    /// Whether every successful parse of this rule consumes at least one
    /// terminal byte (the syntactic check behind the `A.end > 0`
    /// termination extension, §5).
    pub consumes_terminal: bool,
}

/// Right-hand side of a checked rule.
#[derive(Clone, Debug)]
pub enum CRuleBody {
    /// Biased-choice alternatives, each with topologically ordered terms.
    Alts(Vec<CAlt>),
    /// A builtin leaf parser.
    Builtin(Builtin),
    /// Index into [`Grammar::blackboxes`].
    Blackbox(usize),
}

/// A checked alternative.
#[derive(Clone, Debug)]
pub struct CAlt {
    /// Terms in *evaluation* order (topologically sorted). Each term
    /// remembers its index in the written order via [`CTerm::orig_index`],
    /// which is also the index used by [`CExpr::NtAttr`] references and the
    /// slot in the interpreter's per-alternative result vector.
    pub terms: Vec<CTerm>,
    /// Number of terms (== `terms.len()`, cached for result-vector sizing).
    pub n_terms: usize,
}

/// A checked term.
#[derive(Clone, Debug)]
pub struct CTerm {
    /// Index of this term in the alternative's written order.
    pub orig_index: usize,
    /// The term proper.
    pub kind: CTermKind,
}

/// The checked term variants (Fig. 5 plus the switch term of §3.4).
#[derive(Clone, Debug)]
pub enum CTermKind {
    /// `B[el, er]`.
    Symbol {
        /// Callee nonterminal.
        nt: NtId,
        /// Interval expressions.
        interval: CInterval,
    },
    /// `"s"[el, er]`.
    Terminal {
        /// Literal bytes.
        bytes: Arc<[u8]>,
        /// Interval expressions.
        interval: CInterval,
    },
    /// `{id = e}`.
    AttrDef {
        /// Attribute symbol.
        attr: Sym,
        /// Defining expression.
        expr: CExpr,
    },
    /// `⟨e⟩`.
    Predicate {
        /// Condition.
        expr: CExpr,
    },
    /// `for var = from to to do B[el, er]`.
    Array {
        /// Loop variable symbol.
        var: Sym,
        /// Inclusive lower bound.
        from: CExpr,
        /// Exclusive upper bound.
        to: CExpr,
        /// Element nonterminal.
        nt: NtId,
        /// Per-element interval (may mention `var`).
        interval: CInterval,
    },
    /// `switch(c1 : B1[..] / … / D[..])`; the final case has `cond: None`.
    Switch {
        /// All cases including the default (last, `cond == None`).
        cases: Vec<CSwitchCase>,
    },
    /// `star B[el, er]` — iterative one-or-more repetition of `B`, each
    /// repetition starting where the previous one ended.
    Star {
        /// Element nonterminal.
        nt: NtId,
        /// Interval the repetition is confined to.
        interval: CInterval,
    },
}

/// One case of a checked switch term.
#[derive(Clone, Debug)]
pub struct CSwitchCase {
    /// Guard (`None` for the default case).
    pub cond: Option<CExpr>,
    /// Nonterminal of this case.
    pub nt: NtId,
    /// Its interval.
    pub interval: CInterval,
}

/// A checked interval.
#[derive(Clone, Debug)]
pub struct CInterval {
    /// Left endpoint.
    pub lo: CExpr,
    /// Right endpoint.
    pub hi: CExpr,
}

/// A checked expression. Name references have been resolved to interned
/// symbols and, where possible, to specific sibling term occurrences.
#[derive(Clone, Debug)]
pub enum CExpr {
    /// Integer literal.
    Num(i64),
    /// Binary operation.
    Bin(BinOp, Box<CExpr>, Box<CExpr>),
    /// Ternary conditional.
    Cond(Box<CExpr>, Box<CExpr>, Box<CExpr>),
    /// `EOI` of the current rule's input.
    Eoi,
    /// A local attribute or loop variable; looked up in the current
    /// environment, falling through to the invoking alternative's
    /// environment for local (`where`) rules.
    Local(Sym),
    /// `B.id` resolved to the sibling term at written index `term`. The
    /// expected `nt` is rechecked at runtime for switch terms (where the
    /// parsed nonterminal depends on the selected case).
    NtAttr {
        /// Written index of the sibling term parsed as `B`.
        term: usize,
        /// Expected nonterminal.
        nt: NtId,
        /// Attribute symbol (may be `start`/`end`).
        attr: Sym,
    },
    /// `B(e).id` resolved to the sibling array term at written index
    /// `term`.
    ElemAttr {
        /// Written index of the sibling array term.
        term: usize,
        /// Expected element nonterminal.
        nt: NtId,
        /// Element index expression.
        index: Box<CExpr>,
        /// Attribute symbol.
        attr: Sym,
    },
    /// `B.id` inside a local rule where `B` is a sibling of the *invoking*
    /// alternative: resolved dynamically by scanning the parent context
    /// chain for the most recently completed occurrence of `B`.
    OuterAttr {
        /// Nonterminal to search for.
        nt: NtId,
        /// Attribute symbol.
        attr: Sym,
    },
    /// `B(e).id` resolved through the parent context chain, analogously to
    /// [`CExpr::OuterAttr`].
    OuterElem {
        /// Element nonterminal of the array to search for.
        nt: NtId,
        /// Element index expression (evaluated in the *current* context).
        index: Box<CExpr>,
        /// Attribute symbol.
        attr: Sym,
    },
    /// Existential scan (§3.4) over the sibling array at written index
    /// `term` (or over the parent chain when `term` is `None`).
    Exists {
        /// Bound variable.
        var: Sym,
        /// Written index of the array term, if it is a sibling.
        term: Option<usize>,
        /// Element nonterminal of the scanned array.
        nt: NtId,
        /// Per-element condition.
        cond: Box<CExpr>,
        /// Result when an element matches.
        then: Box<CExpr>,
        /// Result when none matches.
        els: Box<CExpr>,
    },
}

impl Grammar {
    /// Resolves a nonterminal name.
    pub fn nt_id(&self, name: &str) -> Option<NtId> {
        self.nt_by_name.get(name).copied()
    }

    /// The name of nonterminal `nt`.
    pub fn nt_name(&self, nt: NtId) -> &str {
        &self.rules[nt.0 as usize].name
    }

    /// The checked rule of nonterminal `nt`.
    pub fn rule(&self, nt: NtId) -> &CRule {
        &self.rules[nt.0 as usize]
    }

    /// All checked rules, indexed by [`NtId`].
    pub fn rules(&self) -> &[CRule] {
        &self.rules
    }

    /// The start nonterminal.
    pub fn start_nt(&self) -> NtId {
        self.start
    }

    /// The start nonterminal's name.
    pub fn start_nt_name(&self) -> &str {
        self.nt_name(self.start)
    }

    /// Resolves an attribute name to its symbol, if it occurs anywhere in
    /// the grammar.
    pub fn attr_sym(&self, name: &str) -> Option<Sym> {
        self.interner.get(name)
    }

    /// The interned symbol of nonterminal `nt`'s name — the key compared by
    /// the `child_*_sym` tree accessors. Resolve a name once with
    /// [`Grammar::nt_sym`] and reuse the symbol in extraction loops.
    pub fn nt_name_sym(&self, nt: NtId) -> Sym {
        self.rules[nt.0 as usize].name_sym
    }

    /// Resolves a nonterminal *name* to its interned symbol.
    pub fn nt_sym(&self, name: &str) -> Option<Sym> {
        self.nt_id(name).map(|nt| self.nt_name_sym(nt))
    }

    /// The name of an attribute symbol.
    pub fn attr_name(&self, sym: Sym) -> &str {
        self.interner.resolve(sym)
    }

    /// The registered blackbox parsers.
    pub fn blackboxes(&self) -> &[Blackbox] {
        &self.blackboxes
    }

    /// The grammar's string interner (symbol table). Symbols are assigned
    /// deterministically during checking, which is what lets a persisted
    /// `.ipgc` artifact reuse pre-resolved [`Sym`]s — the artifact loader
    /// verifies the table entry by entry.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The surface grammar this checked grammar was lowered from.
    pub fn surface(&self) -> &crate::syntax::Grammar {
        &self.surface
    }

    /// Number of nonterminals.
    pub fn nt_count(&self) -> usize {
        self.rules.len()
    }

    /// `def(A)` — the attributes defined in every alternative of `A`'s
    /// rule.
    pub fn def_attrs(&self, nt: NtId) -> &[Sym] {
        &self.rules[nt.0 as usize].def_attrs
    }

    /// Convenience: the well-known `val` symbol.
    pub fn sym_val(&self) -> Sym {
        wellknown::VAL
    }
}
