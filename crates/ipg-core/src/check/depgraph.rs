//! Per-alternative term dependency graphs (§3.2 of the paper).
//!
//! A term `t1` depends on term `t2` when `t1` contains a reference to an
//! attribute of `t2` (or to an attribute *defined by* `t2`, for attribute
//! definition terms). The paper requires the graph to be a DAG and then
//! reorders terms topologically so the parser can evaluate them left to
//! right. We use a *stable* topological order — among ready terms the one
//! earliest in written order goes first — so that rules without forward
//! references keep exactly their written order.

/// A dependency graph over the `n` terms of one alternative.
#[derive(Clone, Debug)]
pub struct DepGraph {
    /// Number of terms.
    pub n: usize,
    /// `deps[i]` = written indices of the terms that term `i` depends on.
    pub deps: Vec<Vec<usize>>,
}

impl DepGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DepGraph { n, deps: vec![Vec::new(); n] }
    }

    /// Records that term `from` depends on term `to`. Self-edges are
    /// recorded too and will be reported as cycles.
    pub fn add_dep(&mut self, from: usize, to: usize) {
        if !self.deps[from].contains(&to) {
            self.deps[from].push(to);
        }
    }

    /// Returns a stable topological order of the terms (dependencies before
    /// dependents; ties broken by written order), or the written indices of
    /// the terms involved in a dependency cycle.
    pub fn topo_order(&self) -> Result<Vec<usize>, Vec<usize>> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        // rdeps[j] = terms that depend on j.
        let mut indegree = vec![0usize; self.n];
        let mut rdeps = vec![Vec::new(); self.n];
        for (i, deps) in self.deps.iter().enumerate() {
            indegree[i] = deps.len();
            for &j in deps {
                rdeps[j].push(i);
            }
        }

        let mut ready: BinaryHeap<Reverse<usize>> =
            (0..self.n).filter(|&i| indegree[i] == 0).map(Reverse).collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(Reverse(i)) = ready.pop() {
            order.push(i);
            for &d in &rdeps[i] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    ready.push(Reverse(d));
                }
            }
        }

        if order.len() == self.n {
            Ok(order)
        } else {
            let mut cycle: Vec<usize> = (0..self.n).filter(|&i| indegree[i] > 0).collect();
            cycle.sort_unstable();
            Err(cycle)
        }
    }
}

/// Convenience constructor used by tests: builds a graph from explicit
/// `(from, to)` dependency pairs.
pub fn build_dep_graph(n: usize, edges: &[(usize, usize)]) -> DepGraph {
    let mut g = DepGraph::new(n);
    for &(from, to) in edges {
        g.add_dep(from, to);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_deps_preserves_written_order() {
        let g = build_dep_graph(4, &[]);
        assert_eq!(g.topo_order().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn forward_reference_reorders() {
        // Paper example: B1[0, B2.a] B2[a1, EOI] {a1 = 2}
        // Term 0 (B1) depends on term 1 (B2); term 1 depends on term 2 (a1).
        let g = build_dep_graph(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.topo_order().unwrap(), vec![2, 1, 0]);
    }

    #[test]
    fn stability_keeps_duplicate_nonterminal_pattern_in_order() {
        // H -> Int[0,4] {offset=Int.val} Int[4,8] {length=Int.val}
        // Term 1 depends on 0, term 3 depends on 2.
        let g = build_dep_graph(4, &[(1, 0), (3, 2)]);
        assert_eq!(g.topo_order().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cycle_is_reported_with_members() {
        let g = build_dep_graph(3, &[(0, 1), (1, 0)]);
        assert_eq!(g.topo_order().unwrap_err(), vec![0, 1]);
    }

    #[test]
    fn self_dependency_is_a_cycle() {
        let g = build_dep_graph(2, &[(1, 1)]);
        assert_eq!(g.topo_order().unwrap_err(), vec![1]);
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let mut g = DepGraph::new(2);
        g.add_dep(1, 0);
        g.add_dep(1, 0);
        assert_eq!(g.deps[1], vec![0]);
        assert_eq!(g.topo_order().unwrap(), vec![0, 1]);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = DepGraph::new(0);
        assert_eq!(g.topo_order().unwrap(), Vec::<usize>::new());
    }
}
