//! Persisted compiled grammars: the `.ipgc` artifact format and its
//! content-hash cache.
//!
//! Everything downstream of [`crate::bytecode::compile`] — the flat
//! [`Program`] pools, the [`AnchorRequirement`] streaming classification,
//! the [`SizeHints`] pre-sizing — is a pure function of the grammar
//! source and the blackbox declarations it was checked against. This
//! module makes that function's output a *build artifact*: a versioned,
//! self-describing binary file that a serve worker, test binary, or CLI
//! invocation loads instead of recompiling.
//!
//! ## Artifact layout
//!
//! All integers are little-endian.
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"IPGC"
//!      4     4  format version (u32) — see [`FORMAT_VERSION`]
//!      8     8  source hash (u64)   — cache key, see [`source_hash`]
//!     16     8  payload length (u64)
//!     24     8  payload hash (u64)  — FNV-1a over the payload bytes
//!     32     …  payload
//!      …    33+ provenance trailer (format v2+, see below)
//! ```
//!
//! The payload carries, length-prefixed and in order: the embedded `.ipg`
//! source, the interner's symbol table (pinning [`Sym`] assignment), the
//! start [`NtId`], the rule/alternative/instruction/expression/case/
//! literal pools of the [`Program`], the nonterminal name table, the
//! anchor classification, and the size hints.
//!
//! ## Provenance trailer (v2+)
//!
//! Format v2 appends a trailer after the payload:
//!
//! ```text
//! offset (from payload end)  size  field
//!                         0    32  SHA-256 digest of the payload
//!                        32     1  flag: 0 = unsigned, 1 = signed
//!                        33    32  (if signed) HMAC-SHA-256 over every
//!                                  preceding byte of the file, keyed by
//!                                  `IPG_ARTIFACT_KEY`
//! ```
//!
//! The digest makes corruption of a cached artifact cryptographically
//! evident (FNV is a checksum, not a collision-resistant hash); the
//! optional MAC makes a *shared or untrusted* cache directory
//! tamper-evident: with a key configured, loaders refuse unsigned or
//! wrongly-signed artifacts with a provenance error, and the cache
//! quarantines + recompiles them. See [`verify`] for the staged check and
//! `docs/ipgc-spec.md` for the normative layout.
//!
//! ## Versioning policy
//!
//! [`FORMAT_VERSION`] is bumped on **any** change to the payload encoding
//! or to the bytecode semantics it transports (new [`Instr`]/[`BExpr`]
//! variants, changed operand widths, …). Loaders decode any version in
//! `MIN_FORMAT_VERSION..=FORMAT_VERSION` (v1 artifacts simply have no
//! trailer); newer or unknown versions fail with a typed
//! [`Error::Artifact`] and the cache recompiles and rewrites them. Cache
//! file names embed the source hash, and the hash input includes the
//! format version, so artifacts from different toolchain versions never
//! collide in one cache directory.
//!
//! ## Integrity
//!
//! Loading is total: corrupt, truncated, or version-skewed bytes produce
//! a typed [`Error::Artifact`], never a panic. The payload hash catches
//! bit-level corruption; a structural validation pass re-checks every
//! cross-pool index against the decoded pool sizes; and
//! [`Artifact::reconstruct_grammar`] verifies the artifact against the
//! grammar re-checked from the embedded source (symbol-for-symbol, so
//! [`Sym`]/[`NtId`] identity across save/load is *checked*, not assumed).

use crate::analysis::{anchor_requirement, AnchorRequirement};
use crate::arena::NtTable;
use crate::blackbox::Blackbox;
use crate::bytecode::{
    compile, BExpr, ExprId, Instr, LitSpan, PAlt, PCase, PRule, PRuleKind, Program, SizeHints,
};
use crate::check::{Grammar, NtId};
use crate::error::{Error, Result};
use crate::intern::Sym;
use crate::interp::vm::VmParser;
use crate::sha256::{ct_eq32, hmac_sha256, sha256};
use crate::syntax::{BinOp, Builtin};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The artifact magic bytes.
pub const MAGIC: [u8; 4] = *b"IPGC";

/// Current artifact format version. Bump on any encoding or bytecode
/// change; loaders reject newer versions with [`Error::Artifact`].
pub const FORMAT_VERSION: u32 = 2;

/// Oldest format version this loader still decodes. v1 files are v2
/// files without the provenance trailer.
pub const MIN_FORMAT_VERSION: u32 = 1;

/// Size of the fixed header preceding the payload.
pub const HEADER_LEN: usize = 32;

/// Length of the SHA-256 payload digest in the v2 trailer.
pub const DIGEST_LEN: usize = 32;

/// Length of the HMAC-SHA-256 tag in a signed v2 trailer.
pub const MAC_LEN: usize = 32;

/// Minimum v2 trailer size: digest plus the signature flag byte.
pub const TRAILER_MIN: usize = DIGEST_LEN + 1;

/// Trailer flag: artifact carries no MAC.
const FLAG_UNSIGNED: u8 = 0;
/// Trailer flag: a keyed MAC follows.
const FLAG_SIGNED: u8 = 1;

/// The artifact signing key from `IPG_ARTIFACT_KEY`, if configured. The
/// variable's raw bytes are the HMAC key.
pub fn artifact_key_from_env() -> Option<Vec<u8>> {
    let key = std::env::var_os("IPG_ARTIFACT_KEY")?;
    let bytes = key.as_encoded_bytes().to_vec();
    if bytes.is_empty() {
        return None;
    }
    Some(bytes)
}

// ---------------------------------------------------------------------------
// Hashing (FNV-1a, 64-bit): no dependency, stable across platforms.
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a hasher used for both the cache key and the payload
/// checksum.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// Hashes raw bytes (the payload checksum).
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// The artifact cache key: a digest of everything the compiled program is
/// a function of — the format version, the grammar source, and the
/// blackbox declarations (name and attribute list; the *implementations*
/// are runtime-bound and do not affect compilation).
pub fn source_hash(spec: &str, blackboxes: &[Blackbox]) -> u64 {
    source_hash_v(FORMAT_VERSION, spec, blackboxes)
}

/// [`source_hash`] for an explicit format version. Validating an older
/// artifact must recompute the key with the version *it* was written at,
/// or every v1 file would spuriously fail the source-hash check.
pub fn source_hash_v(version: u32, spec: &str, blackboxes: &[Blackbox]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(&version.to_le_bytes());
    h.update(&(spec.len() as u64).to_le_bytes());
    h.update(spec.as_bytes());
    h.update(&(blackboxes.len() as u64).to_le_bytes());
    for bb in blackboxes {
        h.update(&(bb.name.len() as u64).to_le_bytes());
        h.update(bb.name.as_bytes());
        h.update(&(bb.attrs.len() as u64).to_le_bytes());
        for a in &bb.attrs {
            h.update(&(a.len() as u64).to_le_bytes());
            h.update(a.as_bytes());
        }
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Byte-level writer / reader
// ---------------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::with_capacity(4096) }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }
    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end =
            self.pos.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
                Error::Artifact(format!("truncated payload at offset {}", self.pos))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A length-prefixed count, sanity-bounded so corrupt lengths fail
    /// cleanly instead of attempting a multi-gigabyte allocation.
    fn count(&mut self, what: &str) -> Result<usize> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        // Every counted element occupies at least one payload byte.
        if n > remaining {
            return Err(Error::Artifact(format!("implausible {what} count {n}")));
        }
        Ok(n as usize)
    }

    fn bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.count("byte-run")?;
        self.take(n)
    }

    fn str(&mut self) -> Result<String> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| Error::Artifact("non-UTF-8 string in payload".into()))
    }

    fn done(&self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(Error::Artifact(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Enum tags
// ---------------------------------------------------------------------------

fn builtin_tag(b: Builtin) -> u8 {
    match b {
        Builtin::U8 => 0,
        Builtin::U16Le => 1,
        Builtin::U16Be => 2,
        Builtin::U32Le => 3,
        Builtin::U32Be => 4,
        Builtin::U64Le => 5,
        Builtin::U64Be => 6,
        Builtin::AsciiInt => 7,
        Builtin::Bytes => 8,
    }
}

fn builtin_of(tag: u8) -> Result<Builtin> {
    Ok(match tag {
        0 => Builtin::U8,
        1 => Builtin::U16Le,
        2 => Builtin::U16Be,
        3 => Builtin::U32Le,
        4 => Builtin::U32Be,
        5 => Builtin::U64Le,
        6 => Builtin::U64Be,
        7 => Builtin::AsciiInt,
        8 => Builtin::Bytes,
        other => return Err(Error::Artifact(format!("unknown builtin tag {other}"))),
    })
}

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Mod => 4,
        BinOp::Eq => 5,
        BinOp::Ne => 6,
        BinOp::Lt => 7,
        BinOp::Gt => 8,
        BinOp::Le => 9,
        BinOp::Ge => 10,
        BinOp::And => 11,
        BinOp::Or => 12,
        BinOp::Shl => 13,
        BinOp::Shr => 14,
        BinOp::BitAnd => 15,
        BinOp::BitOr => 16,
    }
}

fn binop_of(tag: u8) -> Result<BinOp> {
    Ok(match tag {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Mod,
        5 => BinOp::Eq,
        6 => BinOp::Ne,
        7 => BinOp::Lt,
        8 => BinOp::Gt,
        9 => BinOp::Le,
        10 => BinOp::Ge,
        11 => BinOp::And,
        12 => BinOp::Or,
        13 => BinOp::Shl,
        14 => BinOp::Shr,
        15 => BinOp::BitAnd,
        16 => BinOp::BitOr,
        other => return Err(Error::Artifact(format!("unknown binop tag {other}"))),
    })
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Serializes a compiled grammar into `.ipgc` artifact bytes.
///
/// `spec` must be the exact source `grammar` was checked from: the loader
/// reconstructs the [`Grammar`] from it and cross-checks the program's
/// symbol and nonterminal tables against the result.
pub fn encode(
    spec: &str,
    grammar: &Grammar,
    program: &Program,
    anchor: AnchorRequirement,
    hints: SizeHints,
) -> Vec<u8> {
    let mut w = Writer::new();

    // 1. Embedded source.
    w.str(spec);

    // 2. Symbol table, in Sym order: pins Sym assignment across save/load.
    let interner = grammar.interner();
    w.u64(interner.len() as u64);
    for i in 0..interner.len() {
        w.str(interner.resolve(Sym(i as u32)));
    }

    // 3. Start nonterminal.
    w.u32(program.start.0);

    // 4. Rules.
    w.u64(program.rules.len() as u64);
    for rule in &program.rules {
        match rule.kind {
            PRuleKind::Alts { first, count } => {
                w.u8(0);
                w.u32(first);
                w.u32(count);
            }
            PRuleKind::Builtin(b) => {
                w.u8(1);
                w.u8(builtin_tag(b));
            }
            PRuleKind::Blackbox(idx) => {
                w.u8(2);
                w.u32(idx);
            }
        }
        w.u8(rule.is_local as u8);
    }

    // 5. Alternatives.
    w.u64(program.alts.len() as u64);
    for alt in &program.alts {
        w.u32(alt.first);
        w.u32(alt.count);
        w.u16(alt.n_slots);
    }

    // 6. Instructions.
    w.u64(program.code.len() as u64);
    for instr in &program.code {
        match *instr {
            Instr::Match { lit, lo, hi, slot } => {
                w.u8(0);
                w.u32(lit.start);
                w.u32(lit.len);
                w.u32(lo.0);
                w.u32(hi.0);
                w.u16(slot);
            }
            Instr::Call { nt, lo, hi, slot } => {
                w.u8(1);
                w.u32(nt.0);
                w.u32(lo.0);
                w.u32(hi.0);
                w.u16(slot);
            }
            Instr::Set { attr, expr } => {
                w.u8(2);
                w.u32(attr.0);
                w.u32(expr.0);
            }
            Instr::Guard { expr } => {
                w.u8(3);
                w.u32(expr.0);
            }
            Instr::Loop { var, from, to, nt, lo, hi, slot } => {
                w.u8(4);
                w.u32(var.0);
                w.u32(from.0);
                w.u32(to.0);
                w.u32(nt.0);
                w.u32(lo.0);
                w.u32(hi.0);
                w.u16(slot);
            }
            Instr::Star { nt, lo, hi, slot } => {
                w.u8(5);
                w.u32(nt.0);
                w.u32(lo.0);
                w.u32(hi.0);
                w.u16(slot);
            }
            Instr::Switch { first, count, slot } => {
                w.u8(6);
                w.u32(first);
                w.u16(count);
                w.u16(slot);
            }
        }
    }

    // 7. Expressions.
    w.u64(program.exprs.len() as u64);
    for expr in &program.exprs {
        match *expr {
            BExpr::Num(n) => {
                w.u8(0);
                w.i64(n);
            }
            BExpr::Bin(op, a, b) => {
                w.u8(1);
                w.u8(binop_tag(op));
                w.u32(a.0);
                w.u32(b.0);
            }
            BExpr::Cond(c, t, f) => {
                w.u8(2);
                w.u32(c.0);
                w.u32(t.0);
                w.u32(f.0);
            }
            BExpr::Eoi => w.u8(3),
            BExpr::Local(sym) => {
                w.u8(4);
                w.u32(sym.0);
            }
            BExpr::NtAttr { slot, nt, attr } => {
                w.u8(5);
                w.u16(slot);
                w.u32(nt.0);
                w.u32(attr.0);
            }
            BExpr::ElemAttr { slot, nt, index, attr } => {
                w.u8(6);
                w.u16(slot);
                w.u32(nt.0);
                w.u32(index.0);
                w.u32(attr.0);
            }
            BExpr::OuterAttr { nt, attr } => {
                w.u8(7);
                w.u32(nt.0);
                w.u32(attr.0);
            }
            BExpr::OuterElem { nt, index, attr } => {
                w.u8(8);
                w.u32(nt.0);
                w.u32(index.0);
                w.u32(attr.0);
            }
            BExpr::Exists { var, slot, nt, cond, then, els } => {
                w.u8(9);
                w.u32(var.0);
                match slot {
                    Some(s) => {
                        w.u8(1);
                        w.u16(s);
                    }
                    None => w.u8(0),
                }
                w.u32(nt.0);
                w.u32(cond.0);
                w.u32(then.0);
                w.u32(els.0);
            }
        }
    }

    // 8. Switch cases.
    w.u64(program.cases.len() as u64);
    for case in &program.cases {
        match case.cond {
            Some(c) => {
                w.u8(1);
                w.u32(c.0);
            }
            None => w.u8(0),
        }
        w.u32(case.nt.0);
        w.u32(case.lo.0);
        w.u32(case.hi.0);
    }

    // 9. Literal pool.
    w.bytes(&program.lits);

    // 10. Nonterminal name table.
    w.u64(program.nt_table.names.len() as u64);
    for (name, sym) in program.nt_table.names.iter().zip(&program.nt_table.syms) {
        w.str(name);
        w.u32(sym.0);
    }

    // 11. Anchor classification.
    match anchor {
        AnchorRequirement::Prefix => w.u8(0),
        AnchorRequirement::Suffix { k } => {
            w.u8(1);
            w.u64(k as u64);
        }
        AnchorRequirement::FullLength => w.u8(2),
    }

    // 12. Size hints.
    w.u64(hints.frames as u64);
    w.u64(hints.nodes as u64);
    w.u64(hints.leaves as u64);
    w.u64(hints.children as u64);
    w.u64(hints.shifts as u64);

    let payload = w.buf;
    assemble(spec, grammar, payload, None)
}

/// [`encode`], appending a keyed MAC to the provenance trailer so loaders
/// configured with the same key (via `IPG_ARTIFACT_KEY`) accept the
/// artifact from an untrusted cache directory.
pub fn encode_signed(
    spec: &str,
    grammar: &Grammar,
    program: &Program,
    anchor: AnchorRequirement,
    hints: SizeHints,
    key: &[u8],
) -> Vec<u8> {
    let unsigned = encode(spec, grammar, program, anchor, hints);
    sign_bytes(unsigned, key)
}

/// Assembles header + payload + v2 provenance trailer.
fn assemble(spec: &str, grammar: &Grammar, payload: Vec<u8>, key: Option<&[u8]>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_MIN + MAC_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&source_hash(spec, grammar.blackboxes()).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&hash_bytes(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&sha256(&payload));
    out.push(FLAG_UNSIGNED);
    match key {
        Some(k) => sign_bytes(out, k),
        None => out,
    }
}

/// Converts unsigned artifact bytes into signed ones: flips the trailer
/// flag and appends an HMAC over every preceding byte.
fn sign_bytes(mut bytes: Vec<u8>, key: &[u8]) -> Vec<u8> {
    debug_assert_eq!(bytes.last(), Some(&FLAG_UNSIGNED));
    let flag_at = bytes.len() - 1;
    bytes[flag_at] = FLAG_SIGNED;
    let mac = hmac_sha256(key, &bytes);
    bytes.extend_from_slice(&mac);
    bytes
}

/// Convenience: compile `grammar` and encode the result in one step.
pub fn encode_grammar(spec: &str, grammar: &Grammar) -> Vec<u8> {
    let program = compile(grammar);
    let hints = program.size_hints();
    let anchor = anchor_requirement(grammar);
    encode(spec, grammar, &program, anchor, hints)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Why an artifact failed verification, staged so callers (and the
/// `ipg verify` exit code) can distinguish *what kind* of failure it was:
/// a damaged file, a toolchain mismatch, a provenance violation, or a
/// grammar disagreement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// The bytes are not a well-formed artifact: bad magic, truncation,
    /// checksum mismatch, or an out-of-range index in the payload.
    Structural(String),
    /// The artifact's format version is outside the supported range.
    VersionSkew {
        /// The version recorded in the artifact header.
        found: u32,
        /// The oldest version this loader decodes.
        oldest: u32,
        /// The newest version this loader decodes.
        newest: u32,
    },
    /// The provenance trailer rejected the file: payload digest mismatch,
    /// missing signature under a configured key, or a failed MAC check.
    Provenance(String),
    /// The artifact is internally sound but disagrees with the grammar
    /// reconstructed from its embedded source.
    Mismatch(String),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Structural(m) => write!(f, "{m}"),
            VerifyError::VersionSkew { found, oldest, newest } => write!(
                f,
                "format version skew: artifact v{found}, loader supports v{oldest}..v{newest}"
            ),
            VerifyError::Provenance(m) => write!(f, "provenance: {m}"),
            VerifyError::Mismatch(m) => write!(f, "{m}"),
        }
    }
}

impl From<VerifyError> for Error {
    fn from(e: VerifyError) -> Error {
        Error::Artifact(e.to_string())
    }
}

/// The header/trailer fields of a validated artifact envelope, with the
/// payload located but not yet decoded.
struct RawParts<'a> {
    version: u32,
    source_hash: u64,
    payload: &'a [u8],
    signed: bool,
    mac_checked: bool,
}

/// Validates the artifact envelope: header, length, checksums, and the
/// v2 provenance trailer (digest always; MAC when `key` is configured).
/// Classifies failures per [`VerifyError`].
fn split<'a>(
    bytes: &'a [u8],
    key: Option<&[u8]>,
) -> std::result::Result<RawParts<'a>, VerifyError> {
    let structural = |m: String| Err(VerifyError::Structural(m));
    if bytes.len() < HEADER_LEN {
        return structural(format!(
            "file too short for header: {} bytes, need {HEADER_LEN}",
            bytes.len()
        ));
    }
    if bytes[..4] != MAGIC {
        return structural("bad magic (not an .ipgc artifact)".into());
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(VerifyError::VersionSkew {
            found: version,
            oldest: MIN_FORMAT_VERSION,
            newest: FORMAT_VERSION,
        });
    }
    let source_hash = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let payload_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let payload_hash = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
    let rest = &bytes[HEADER_LEN..];

    let (payload, signed, mac_checked);
    if version == 1 {
        // v1: the payload runs to end-of-file, no trailer.
        if rest.len() as u64 != payload_len {
            return structural(format!(
                "payload length mismatch: header says {payload_len}, file has {}",
                rest.len()
            ));
        }
        payload = rest;
        signed = false;
        mac_checked = false;
        if key.is_some() {
            return Err(VerifyError::Provenance(
                "signing key configured but v1 artifact carries no provenance trailer".into(),
            ));
        }
    } else {
        let room = rest.len().checked_sub(TRAILER_MIN);
        let plen = usize::try_from(payload_len).ok().filter(|&p| Some(p) <= room);
        let Some(plen) = plen else {
            return structural(format!(
                "payload length mismatch: header says {payload_len}, {} bytes follow the header \
                 (trailer needs {TRAILER_MIN})",
                rest.len()
            ));
        };
        payload = &rest[..plen];
        let digest: &[u8; 32] = rest[plen..plen + DIGEST_LEN].try_into().unwrap();
        let flag = rest[plen + DIGEST_LEN];
        let trailer_end = match flag {
            FLAG_UNSIGNED => plen + TRAILER_MIN,
            FLAG_SIGNED => plen + TRAILER_MIN + MAC_LEN,
            other => return structural(format!("unknown trailer flag {other}")),
        };
        if rest.len() != trailer_end {
            return structural(format!(
                "file length mismatch: {} bytes after header, trailer ends at {trailer_end}",
                rest.len()
            ));
        }
        signed = flag == FLAG_SIGNED;
        if !ct_eq32(&sha256(payload), digest) {
            return Err(VerifyError::Provenance(
                "payload digest mismatch (corrupt or tampered artifact)".into(),
            ));
        }
        match (signed, key) {
            (true, Some(k)) => {
                let mac_start = HEADER_LEN + plen + TRAILER_MIN;
                let mac: &[u8; 32] = bytes[mac_start..mac_start + MAC_LEN].try_into().unwrap();
                if !ct_eq32(&hmac_sha256(k, &bytes[..mac_start]), mac) {
                    return Err(VerifyError::Provenance(
                        "MAC verification failed (wrong key or tampered artifact)".into(),
                    ));
                }
                mac_checked = true;
            }
            (false, Some(_)) => {
                return Err(VerifyError::Provenance(
                    "signing key configured but artifact is unsigned".into(),
                ));
            }
            (_, None) => mac_checked = false,
        }
    }
    if hash_bytes(payload) != payload_hash {
        return structural("payload checksum mismatch (corrupt artifact)".into());
    }
    Ok(RawParts { version, source_hash, payload, signed, mac_checked })
}

/// A decoded `.ipgc` artifact: the program and its precomputed analyses,
/// plus the embedded source and symbol table needed to rebind it to a
/// [`Grammar`].
#[derive(Debug)]
pub struct Artifact {
    /// The format version the artifact was written at.
    pub version: u32,
    /// The embedded `.ipg` source the program was compiled from.
    pub spec: String,
    /// The deserialized bytecode program.
    pub program: Program,
    /// The persisted streaming classification.
    pub anchor: AnchorRequirement,
    /// The persisted VM pre-sizing hints.
    pub hints: SizeHints,
    /// The cache key recorded in the header.
    pub source_hash: u64,
    /// The interner's symbol table at compile time, in [`Sym`] order.
    pub symbols: Vec<String>,
}

/// Decodes and structurally validates artifact bytes, honoring
/// `IPG_ARTIFACT_KEY` for the provenance policy (see
/// [`decode_with_key`]).
///
/// # Errors
///
/// [`Error::Artifact`] on bad magic, version skew, truncation, checksum
/// or provenance mismatch, or any out-of-range cross-pool index. Never
/// panics.
pub fn decode(bytes: &[u8]) -> Result<Artifact> {
    decode_with_key(bytes, artifact_key_from_env().as_deref())
}

/// [`decode`] with an explicit provenance policy. With `key` set, the
/// artifact must be v2+, signed, and carry a valid MAC — unsigned or v1
/// files are rejected with a provenance error (the cache then
/// quarantines and recompiles them). Without a key, signatures are
/// ignored and only the digest/checksum integrity checks apply.
pub fn decode_with_key(bytes: &[u8], key: Option<&[u8]>) -> Result<Artifact> {
    let parts = split(bytes, key)?;
    decode_parts(parts)
}

/// Decodes the located payload into an [`Artifact`].
fn decode_parts(parts: RawParts<'_>) -> Result<Artifact> {
    let RawParts { version, source_hash, payload, .. } = parts;
    let mut r = Reader::new(payload);

    // 1. Source.
    let spec = r.str()?;

    // 2. Symbol table.
    let n_syms = r.count("symbol")?;
    let mut symbols = Vec::with_capacity(n_syms);
    for _ in 0..n_syms {
        symbols.push(r.str()?);
    }

    // 3. Start nonterminal.
    let start = NtId(r.u32()?);

    // 4. Rules.
    let n_rules = r.count("rule")?;
    let mut rules = Vec::with_capacity(n_rules);
    for _ in 0..n_rules {
        let kind = match r.u8()? {
            0 => PRuleKind::Alts { first: r.u32()?, count: r.u32()? },
            1 => PRuleKind::Builtin(builtin_of(r.u8()?)?),
            2 => PRuleKind::Blackbox(r.u32()?),
            other => return Err(Error::Artifact(format!("unknown rule tag {other}"))),
        };
        let is_local = r.u8()? != 0;
        rules.push(PRule { kind, is_local });
    }

    // 5. Alternatives.
    let n_alts = r.count("alt")?;
    let mut alts = Vec::with_capacity(n_alts);
    for _ in 0..n_alts {
        alts.push(PAlt { first: r.u32()?, count: r.u32()?, n_slots: r.u16()? });
    }

    // 6. Instructions.
    let n_code = r.count("instruction")?;
    let mut code = Vec::with_capacity(n_code);
    for _ in 0..n_code {
        let instr = match r.u8()? {
            0 => Instr::Match {
                lit: LitSpan { start: r.u32()?, len: r.u32()? },
                lo: ExprId(r.u32()?),
                hi: ExprId(r.u32()?),
                slot: r.u16()?,
            },
            1 => Instr::Call {
                nt: NtId(r.u32()?),
                lo: ExprId(r.u32()?),
                hi: ExprId(r.u32()?),
                slot: r.u16()?,
            },
            2 => Instr::Set { attr: Sym(r.u32()?), expr: ExprId(r.u32()?) },
            3 => Instr::Guard { expr: ExprId(r.u32()?) },
            4 => Instr::Loop {
                var: Sym(r.u32()?),
                from: ExprId(r.u32()?),
                to: ExprId(r.u32()?),
                nt: NtId(r.u32()?),
                lo: ExprId(r.u32()?),
                hi: ExprId(r.u32()?),
                slot: r.u16()?,
            },
            5 => Instr::Star {
                nt: NtId(r.u32()?),
                lo: ExprId(r.u32()?),
                hi: ExprId(r.u32()?),
                slot: r.u16()?,
            },
            6 => Instr::Switch { first: r.u32()?, count: r.u16()?, slot: r.u16()? },
            other => return Err(Error::Artifact(format!("unknown instruction tag {other}"))),
        };
        code.push(instr);
    }

    // 7. Expressions.
    let n_exprs = r.count("expression")?;
    let mut exprs = Vec::with_capacity(n_exprs);
    for _ in 0..n_exprs {
        let expr = match r.u8()? {
            0 => BExpr::Num(r.i64()?),
            1 => BExpr::Bin(binop_of(r.u8()?)?, ExprId(r.u32()?), ExprId(r.u32()?)),
            2 => BExpr::Cond(ExprId(r.u32()?), ExprId(r.u32()?), ExprId(r.u32()?)),
            3 => BExpr::Eoi,
            4 => BExpr::Local(Sym(r.u32()?)),
            5 => BExpr::NtAttr { slot: r.u16()?, nt: NtId(r.u32()?), attr: Sym(r.u32()?) },
            6 => BExpr::ElemAttr {
                slot: r.u16()?,
                nt: NtId(r.u32()?),
                index: ExprId(r.u32()?),
                attr: Sym(r.u32()?),
            },
            7 => BExpr::OuterAttr { nt: NtId(r.u32()?), attr: Sym(r.u32()?) },
            8 => BExpr::OuterElem {
                nt: NtId(r.u32()?),
                index: ExprId(r.u32()?),
                attr: Sym(r.u32()?),
            },
            9 => {
                let var = Sym(r.u32()?);
                let slot = match r.u8()? {
                    0 => None,
                    1 => Some(r.u16()?),
                    other => {
                        return Err(Error::Artifact(format!("bad option tag {other} in Exists")))
                    }
                };
                BExpr::Exists {
                    var,
                    slot,
                    nt: NtId(r.u32()?),
                    cond: ExprId(r.u32()?),
                    then: ExprId(r.u32()?),
                    els: ExprId(r.u32()?),
                }
            }
            other => return Err(Error::Artifact(format!("unknown expression tag {other}"))),
        };
        exprs.push(expr);
    }

    // 8. Cases.
    let n_cases = r.count("case")?;
    let mut cases = Vec::with_capacity(n_cases);
    for _ in 0..n_cases {
        let cond = match r.u8()? {
            0 => None,
            1 => Some(ExprId(r.u32()?)),
            other => return Err(Error::Artifact(format!("bad option tag {other} in case"))),
        };
        cases.push(PCase { cond, nt: NtId(r.u32()?), lo: ExprId(r.u32()?), hi: ExprId(r.u32()?) });
    }

    // 9. Literal pool.
    let lits = r.bytes()?.to_vec();

    // 10. Nonterminal table.
    let n_nts = r.count("nonterminal")?;
    let mut names = Vec::with_capacity(n_nts);
    let mut nt_syms = Vec::with_capacity(n_nts);
    for _ in 0..n_nts {
        names.push(Arc::<str>::from(r.str()?));
        nt_syms.push(Sym(r.u32()?));
    }

    // 11. Anchor classification.
    let anchor = match r.u8()? {
        0 => AnchorRequirement::Prefix,
        1 => AnchorRequirement::Suffix { k: r.u64()? as usize },
        2 => AnchorRequirement::FullLength,
        other => return Err(Error::Artifact(format!("unknown anchor tag {other}"))),
    };

    // 12. Size hints.
    let hints = SizeHints {
        frames: r.u64()? as usize,
        nodes: r.u64()? as usize,
        leaves: r.u64()? as usize,
        children: r.u64()? as usize,
        shifts: r.u64()? as usize,
    };

    r.done()?;

    let program = Program {
        rules,
        alts,
        code,
        exprs,
        cases,
        lits,
        nt_table: Arc::new(NtTable { names, syms: nt_syms }),
        start,
    };
    let artifact = Artifact { version, spec, program, anchor, hints, source_hash, symbols };
    artifact.validate_structure()?;
    Ok(artifact)
}

/// A successful [`verify`] outcome: what the artifact is and which checks
/// actually ran.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// Format version from the header.
    pub version: u32,
    /// Cache key from the header.
    pub source_hash: u64,
    /// Decoded payload size in bytes.
    pub payload_len: usize,
    /// Whether the artifact carries a MAC.
    pub signed: bool,
    /// Whether the MAC was actually verified (requires a configured key).
    pub mac_checked: bool,
    /// Rules in the decoded program.
    pub rules: usize,
    /// Symbols in the pinned symbol table.
    pub symbols: usize,
}

/// Verifies artifact bytes end to end, classifying any failure by stage:
/// envelope + provenance ([`split`] semantics), structural payload
/// decode, then reconstruction of the grammar from the embedded source
/// and cross-validation against the decoded program. `blackboxes` are
/// bound by name during reconstruction, as at load time.
pub fn verify(
    bytes: &[u8],
    key: Option<&[u8]>,
    blackboxes: Vec<Blackbox>,
) -> std::result::Result<VerifyReport, VerifyError> {
    let parts = split(bytes, key)?;
    let (version, source_hash, payload_len) =
        (parts.version, parts.source_hash, parts.payload.len());
    let (signed, mac_checked) = (parts.signed, parts.mac_checked);
    let artifact = decode_parts(parts).map_err(|e| VerifyError::Structural(e.to_string()))?;
    artifact.reconstruct_grammar(blackboxes).map_err(|e| VerifyError::Mismatch(e.to_string()))?;
    Ok(VerifyReport {
        version,
        source_hash,
        payload_len,
        signed,
        mac_checked,
        rules: artifact.program.rules.len(),
        symbols: artifact.symbols.len(),
    })
}

impl Artifact {
    /// Verifies every cross-pool index of the decoded program, so that a
    /// crafted (checksum-consistent) artifact can still never drive the
    /// VM out of bounds.
    fn validate_structure(&self) -> Result<()> {
        let p = &self.program;
        let n_rules = p.rules.len() as u32;
        let n_alts = p.alts.len() as u32;
        let n_code = p.code.len() as u32;
        let n_exprs = p.exprs.len() as u32;
        let n_cases = p.cases.len() as u32;
        let n_lits = p.lits.len() as u32;
        let n_syms = self.symbols.len() as u32;
        let err = |msg: String| Err(Error::Artifact(msg));

        let nt = |id: NtId| {
            if id.0 >= n_rules {
                return err(format!("nonterminal id {} out of range ({n_rules} rules)", id.0));
            }
            Ok(())
        };
        let ex = |id: ExprId| {
            if id.0 >= n_exprs {
                return err(format!("expression id {} out of range ({n_exprs} exprs)", id.0));
            }
            Ok(())
        };
        let sym = |s: Sym| {
            if s.0 >= n_syms {
                return err(format!("symbol {} out of range ({n_syms} symbols)", s.0));
            }
            Ok(())
        };

        if p.nt_table.names.len() != p.rules.len() {
            return err(format!(
                "nonterminal table has {} names for {} rules",
                p.nt_table.names.len(),
                p.rules.len()
            ));
        }
        nt(p.start)?;
        for s in &p.nt_table.syms {
            sym(*s)?;
        }

        for rule in &p.rules {
            if let PRuleKind::Alts { first, count } = rule.kind {
                if u64::from(first) + u64::from(count) > u64::from(n_alts) {
                    return err(format!("alt span {first}+{count} out of range ({n_alts} alts)"));
                }
            }
        }
        for alt in &p.alts {
            if u64::from(alt.first) + u64::from(alt.count) > u64::from(n_code) {
                return err(format!(
                    "instruction span {}+{} out of range ({n_code} instrs)",
                    alt.first, alt.count
                ));
            }
        }
        for instr in &p.code {
            match *instr {
                Instr::Match { lit, lo, hi, .. } => {
                    if u64::from(lit.start) + u64::from(lit.len) > u64::from(n_lits) {
                        return err(format!(
                            "literal span {}+{} out of range ({n_lits} bytes)",
                            lit.start, lit.len
                        ));
                    }
                    ex(lo)?;
                    ex(hi)?;
                }
                Instr::Call { nt: callee, lo, hi, .. } => {
                    nt(callee)?;
                    ex(lo)?;
                    ex(hi)?;
                }
                Instr::Set { attr, expr } => {
                    sym(attr)?;
                    ex(expr)?;
                }
                Instr::Guard { expr } => ex(expr)?,
                Instr::Loop { var, from, to, nt: callee, lo, hi, .. } => {
                    sym(var)?;
                    ex(from)?;
                    ex(to)?;
                    nt(callee)?;
                    ex(lo)?;
                    ex(hi)?;
                }
                Instr::Star { nt: callee, lo, hi, .. } => {
                    nt(callee)?;
                    ex(lo)?;
                    ex(hi)?;
                }
                Instr::Switch { first, count, .. } => {
                    if u64::from(first) + u64::from(count) > u64::from(n_cases) {
                        return err(format!(
                            "case span {first}+{count} out of range ({n_cases} cases)"
                        ));
                    }
                }
            }
        }
        for e in &p.exprs {
            match *e {
                BExpr::Num(_) | BExpr::Eoi => {}
                BExpr::Bin(_, a, b) => {
                    ex(a)?;
                    ex(b)?;
                }
                BExpr::Cond(c, t, f) => {
                    ex(c)?;
                    ex(t)?;
                    ex(f)?;
                }
                BExpr::Local(s) => sym(s)?,
                BExpr::NtAttr { nt: n, attr, .. } => {
                    nt(n)?;
                    sym(attr)?;
                }
                BExpr::ElemAttr { nt: n, index, attr, .. } => {
                    nt(n)?;
                    ex(index)?;
                    sym(attr)?;
                }
                BExpr::OuterAttr { nt: n, attr } => {
                    nt(n)?;
                    sym(attr)?;
                }
                BExpr::OuterElem { nt: n, index, attr } => {
                    nt(n)?;
                    ex(index)?;
                    sym(attr)?;
                }
                BExpr::Exists { var, nt: n, cond, then, els, .. } => {
                    sym(var)?;
                    nt(n)?;
                    ex(cond)?;
                    ex(then)?;
                    ex(els)?;
                }
            }
        }
        for case in &p.cases {
            if let Some(c) = case.cond {
                ex(c)?;
            }
            nt(case.nt)?;
            ex(case.lo)?;
            ex(case.hi)?;
        }
        Ok(())
    }

    /// Re-checks the embedded source (binding `blackboxes` by name) and
    /// verifies that the resulting grammar assigns exactly the symbols and
    /// nonterminal ids the program was compiled with.
    ///
    /// # Errors
    ///
    /// [`Error::Artifact`] when the reconstructed grammar disagrees with
    /// the artifact (which would make the program's pre-resolved ids dangle);
    /// frontend/check errors if the embedded source no longer parses.
    pub fn reconstruct_grammar(&self, blackboxes: Vec<Blackbox>) -> Result<Grammar> {
        let grammar = crate::frontend::parse_grammar_with(&self.spec, blackboxes)?;
        self.validate_against(&grammar)?;
        Ok(grammar)
    }

    /// Verifies the artifact against an already-checked grammar: same
    /// cache key, same symbol table, same nonterminal table, same start
    /// id, and in-range blackbox indices.
    pub fn validate_against(&self, grammar: &Grammar) -> Result<()> {
        // Recompute with the version the artifact was written at: the
        // hash input includes the format version, so a v1 artifact's key
        // differs from a v2 key over the same source.
        let expected = source_hash_v(self.version, &self.spec, grammar.blackboxes());
        if expected != self.source_hash {
            return Err(Error::Artifact(format!(
                "source hash mismatch: artifact {:016x}, grammar {expected:016x}",
                self.source_hash
            )));
        }
        let interner = grammar.interner();
        if interner.len() != self.symbols.len() {
            return Err(Error::Artifact(format!(
                "symbol table size mismatch: artifact {}, grammar {}",
                self.symbols.len(),
                interner.len()
            )));
        }
        for (i, name) in self.symbols.iter().enumerate() {
            let actual = interner.resolve(Sym(i as u32));
            if actual != name {
                return Err(Error::Artifact(format!(
                    "symbol {i} mismatch: artifact `{name}`, grammar `{actual}`"
                )));
            }
        }
        if self.program.rules.len() != grammar.nt_count() {
            return Err(Error::Artifact(format!(
                "rule count mismatch: artifact {}, grammar {}",
                self.program.rules.len(),
                grammar.nt_count()
            )));
        }
        if self.program.start != grammar.start_nt() {
            return Err(Error::Artifact(format!(
                "start nonterminal mismatch: artifact {}, grammar {}",
                self.program.start.0,
                grammar.start_nt().0
            )));
        }
        for (i, (name, sym)) in
            self.program.nt_table.names.iter().zip(&self.program.nt_table.syms).enumerate()
        {
            let nt = NtId(i as u32);
            if grammar.nt_name(nt) != &**name {
                return Err(Error::Artifact(format!(
                    "nonterminal {i} name mismatch: artifact `{name}`, grammar `{}`",
                    grammar.nt_name(nt)
                )));
            }
            if grammar.nt_name_sym(nt) != *sym {
                return Err(Error::Artifact(format!("nonterminal {i} symbol mismatch")));
            }
        }
        for rule in &self.program.rules {
            if let PRuleKind::Blackbox(idx) = rule.kind {
                if idx as usize >= grammar.blackboxes().len() {
                    return Err(Error::Artifact(format!(
                        "blackbox index {idx} out of range ({} registered)",
                        grammar.blackboxes().len()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Binds the artifact to its reconstructed grammar, producing a
    /// ready-to-run [`VmParser`] without recompiling the bytecode.
    pub fn into_parser(self, grammar: &Grammar) -> Result<VmParser<'_>> {
        self.validate_against(grammar)?;
        Ok(VmParser::from_compiled(grammar, self.program, self.anchor, self.hints))
    }
}

// ---------------------------------------------------------------------------
// The on-disk cache
// ---------------------------------------------------------------------------

/// Why a cache lookup compiled from source instead of loading.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MissReason {
    /// No artifact file for this cache key.
    Absent,
    /// An artifact existed but failed to load (version skew, corruption,
    /// or a grammar mismatch); it was recompiled and rewritten.
    Invalid(String),
    /// An invalid artifact was additionally quarantined: renamed to
    /// `*.ipgc.bad` (preserving the evidence for inspection) before the
    /// recompiled replacement was written.
    Quarantined(String),
}

/// The outcome of one [`Cache::load_or_compile`] call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The program was deserialized from a fresh artifact.
    Hit,
    /// The program was compiled from source (and the artifact rewritten).
    Miss(MissReason),
}

/// A compiled grammar as handed out by the cache: the checked grammar
/// plus the program and precomputed analyses, ready for
/// [`VmParser::from_compiled`].
#[derive(Debug)]
pub struct CachedProgram {
    /// The checked grammar (reconstructed or freshly checked).
    pub grammar: Grammar,
    /// The bytecode program (deserialized or freshly compiled).
    pub program: Program,
    /// Streaming classification.
    pub anchor: AnchorRequirement,
    /// VM pre-sizing hints.
    pub hints: SizeHints,
    /// The artifact cache key.
    pub source_hash: u64,
}

impl CachedProgram {
    /// Compiles `spec` in memory, bypassing any artifact I/O.
    pub fn compile(spec: &str, blackboxes: Vec<Blackbox>) -> Result<CachedProgram> {
        let grammar = crate::frontend::parse_grammar_with(spec, blackboxes)?;
        let program = compile(&grammar);
        let hints = program.size_hints();
        let anchor = anchor_requirement(&grammar);
        let source_hash = source_hash(spec, grammar.blackboxes());
        Ok(CachedProgram { grammar, program, anchor, hints, source_hash })
    }
}

/// What one [`Cache::gc`] pass did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Directory entries examined.
    pub scanned: usize,
    /// Files deleted.
    pub removed: usize,
    /// Artifacts surviving the pass.
    pub kept: usize,
    /// Total size of the deleted files.
    pub bytes_reclaimed: u64,
}

/// Process-wide artifact-cache telemetry, aggregated across every
/// [`Cache`] instance. Caches are created per load (each
/// [`Cache::from_env`] call builds a fresh instance), so the
/// per-instance counters alone cannot describe the process — every
/// instance mirrors its increments here, and a metrics exporter
/// registers these shared cells once instead of chasing instances.
pub mod cache_totals {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, OnceLock};

    fn cell(slot: &OnceLock<Arc<AtomicU64>>) -> &Arc<AtomicU64> {
        slot.get_or_init(|| Arc::new(AtomicU64::new(0)))
    }

    static HITS: OnceLock<Arc<AtomicU64>> = OnceLock::new();
    static MISSES: OnceLock<Arc<AtomicU64>> = OnceLock::new();
    static QUARANTINED: OnceLock<Arc<AtomicU64>> = OnceLock::new();

    /// The three shared cells, cloned for registration in a metrics
    /// registry (the producer keeps incrementing; the registry reads).
    pub struct Totals {
        /// Loads answered from a fresh artifact.
        pub hits: Arc<AtomicU64>,
        /// Loads that fell back to compiling from source.
        pub misses: Arc<AtomicU64>,
        /// Invalid artifacts renamed to `*.ipgc.bad`.
        pub quarantined: Arc<AtomicU64>,
    }

    /// Clones the shared counter cells.
    pub fn counters() -> Totals {
        Totals {
            hits: Arc::clone(cell(&HITS)),
            misses: Arc::clone(cell(&MISSES)),
            quarantined: Arc::clone(cell(&QUARANTINED)),
        }
    }

    /// Cache hits across every instance since process start.
    pub fn hits() -> u64 {
        cell(&HITS).load(Ordering::Relaxed)
    }

    /// Cache misses across every instance since process start.
    pub fn misses() -> u64 {
        cell(&MISSES).load(Ordering::Relaxed)
    }

    /// Quarantines across every instance since process start.
    pub fn quarantined() -> u64 {
        cell(&QUARANTINED).load(Ordering::Relaxed)
    }

    pub(super) fn record_hit() {
        cell(&HITS).fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn record_miss() {
        cell(&MISSES).fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn record_quarantine() {
        cell(&QUARANTINED).fetch_add(1, Ordering::Relaxed);
    }
}

/// A directory of `.ipgc` artifacts keyed by [`source_hash`].
///
/// File names are `<name>-<hash:016x>.ipgc`; writes go through a unique
/// temporary file plus an atomic rename, so concurrent processes warming
/// the same cache never observe partial artifacts.
///
/// Loading is *self-healing*: an invalid hit (corrupt, version-skewed,
/// tampered, or mismatched) is quarantined — renamed to `*.ipgc.bad` and
/// counted — and the grammar is transparently recompiled from source and
/// rewritten. With a signing key configured ([`Cache::with_key`] or
/// `IPG_ARTIFACT_KEY` via [`Cache::from_env`]), written artifacts are
/// signed and unsigned/wrongly-signed hits are treated as invalid.
#[derive(Clone, Debug)]
pub struct Cache {
    dir: PathBuf,
    key: Option<Arc<Vec<u8>>>,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
    quarantined: Arc<AtomicU64>,
}

impl Cache {
    /// A cache rooted at `dir` (created lazily on first write), with no
    /// signing key.
    pub fn at(dir: impl Into<PathBuf>) -> Cache {
        Cache {
            dir: dir.into(),
            key: None,
            hits: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
            quarantined: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The cache honoring the environment: `IPG_CACHE_DIR` if set,
    /// otherwise `$XDG_CACHE_HOME/ipg`, otherwise `~/.cache/ipg`, falling
    /// back to `<tmp>/ipg-cache`; signed when `IPG_ARTIFACT_KEY` is set.
    /// Returns `None` when `IPG_NO_CACHE` is set (callers then compile in
    /// memory).
    pub fn from_env() -> Option<Cache> {
        if std::env::var_os("IPG_NO_CACHE").is_some() {
            return None;
        }
        let cache = if let Some(dir) = std::env::var_os("IPG_CACHE_DIR") {
            Cache::at(PathBuf::from(dir))
        } else if let Some(xdg) = std::env::var_os("XDG_CACHE_HOME") {
            Cache::at(PathBuf::from(xdg).join("ipg"))
        } else if let Some(home) = std::env::var_os("HOME") {
            Cache::at(PathBuf::from(home).join(".cache").join("ipg"))
        } else {
            Cache::at(std::env::temp_dir().join("ipg-cache"))
        };
        Some(cache.with_key(artifact_key_from_env()))
    }

    /// Replaces the signing key. `Some` makes writes signed and demands a
    /// valid MAC on every hit; `None` disables the provenance policy.
    pub fn with_key(mut self, key: Option<Vec<u8>>) -> Cache {
        self.key = key.map(Arc::new);
        self
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// How many invalid artifacts this cache (including clones sharing
    /// its counter) has quarantined to `*.ipgc.bad`.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// How many [`Cache::load_or_compile`] calls loaded a fresh
    /// artifact (shared across clones, like [`Cache::quarantined`]).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// How many [`Cache::load_or_compile`] calls fell back to
    /// compiling from source.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The shared hit counter, for registration in a metrics registry.
    pub fn hits_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.hits)
    }

    /// The shared miss counter, for registration in a metrics registry.
    pub fn misses_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.misses)
    }

    /// The shared quarantine counter, for registration in a metrics
    /// registry.
    pub fn quarantined_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.quarantined)
    }

    /// The artifact path for grammar `name` with the given cache key.
    pub fn path_for(&self, name: &str, hash: u64) -> PathBuf {
        // Grammar names come from module names or file stems; sanitize so
        // a hostile name cannot escape the cache directory.
        let safe: String = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        self.dir.join(format!("{safe}-{hash:016x}.ipgc"))
    }

    /// Loads the artifact for (`name`, `spec`, `blackboxes`) if a fresh
    /// one exists, otherwise compiles from source and (re)writes it.
    ///
    /// Loading is self-healing: any load failure — missing file, version
    /// skew, corruption, grammar mismatch — falls back to compiling, and
    /// the reason is reported in the [`CacheOutcome`].
    ///
    /// # Errors
    ///
    /// Only compilation errors (bad spec) are fatal; artifact and I/O
    /// problems degrade to a miss.
    pub fn load_or_compile(
        &self,
        name: &str,
        spec: &str,
        blackboxes: Vec<Blackbox>,
    ) -> Result<(CachedProgram, CacheOutcome)> {
        let hash = source_hash(spec, &blackboxes);
        let path = self.path_for(name, hash);
        let reason = match std::fs::read(&path) {
            Ok(bytes) => match self.try_load(&bytes, spec, blackboxes.clone()) {
                Ok(cached) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    cache_totals::record_hit();
                    return Ok((cached, CacheOutcome::Hit));
                }
                Err(e) => self.quarantine(&path, e.to_string()),
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => MissReason::Absent,
            Err(e) => MissReason::Invalid(format!("cannot read {}: {e}", path.display())),
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        cache_totals::record_miss();
        let cached = CachedProgram::compile(spec, blackboxes)?;
        let bytes = self.encode_for_write(spec, &cached);
        // Cache writes are best-effort: a read-only cache dir must not
        // break parsing.
        let _ = self.write_atomic(&path, &bytes);
        Ok((cached, CacheOutcome::Miss(reason)))
    }

    /// Moves an invalid artifact out of the lookup path, to
    /// `<file>.ipgc.bad`, so the corrupt bytes stay inspectable but can
    /// never be hit again. Falls back to a plain invalid miss when the
    /// rename fails (e.g. a read-only cache dir).
    fn quarantine(&self, path: &Path, why: String) -> MissReason {
        let mut bad = path.as_os_str().to_owned();
        bad.push(".bad");
        match std::fs::rename(path, PathBuf::from(bad)) {
            Ok(()) => {
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                cache_totals::record_quarantine();
                MissReason::Quarantined(why)
            }
            Err(_) => MissReason::Invalid(why),
        }
    }

    fn encode_for_write(&self, spec: &str, cached: &CachedProgram) -> Vec<u8> {
        match &self.key {
            Some(key) => encode_signed(
                spec,
                &cached.grammar,
                &cached.program,
                cached.anchor,
                cached.hints,
                key,
            ),
            None => encode(spec, &cached.grammar, &cached.program, cached.anchor, cached.hints),
        }
    }

    fn try_load(
        &self,
        bytes: &[u8],
        spec: &str,
        blackboxes: Vec<Blackbox>,
    ) -> Result<CachedProgram> {
        let artifact = decode_with_key(bytes, self.key.as_ref().map(|k| k.as_slice()))?;
        if artifact.spec != spec {
            return Err(Error::Artifact("embedded source differs from requested spec".into()));
        }
        let grammar = artifact.reconstruct_grammar(blackboxes)?;
        let Artifact { program, anchor, hints, source_hash, .. } = artifact;
        Ok(CachedProgram { grammar, program, anchor, hints, source_hash })
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        // The temp name must be unique per *writer*, not just per process:
        // two threads racing a cold miss on the same grammar would
        // otherwise interleave writes into one shared temp file and
        // rename torn bytes into place.
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        std::fs::create_dir_all(&self.dir)?;
        let tmp = path.with_extension(format!(
            "ipgc.tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, bytes)?;
        match std::fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Garbage-collects the cache directory. Policy, in order:
    ///
    /// 1. Leftover `*.tmp` files and quarantined `*.ipgc.bad` files are
    ///    always deleted.
    /// 2. For each `{name}` prefix, only the newest artifact is current;
    ///    older same-name artifacts (stale cache keys from edited sources
    ///    or older toolchains) are always deleted.
    /// 3. With `max_age`, current artifacts not modified within the
    ///    window are deleted too — the cache is derived state, anything
    ///    evicted is recompiled on next use.
    /// 4. With `max_bytes`, surviving artifacts are deleted oldest-first
    ///    until the directory total fits the budget.
    ///
    /// A missing directory is an empty report, not an error; individual
    /// unreadable/undeletable entries are skipped.
    pub fn gc(
        &self,
        max_bytes: Option<u64>,
        max_age: Option<Duration>,
    ) -> std::io::Result<GcReport> {
        let mut report = GcReport::default();
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(report),
            Err(e) => return Err(e),
        };
        // (path, len, mtime) for live artifacts; junk removed on sight.
        let mut artifacts: Vec<(PathBuf, u64, std::time::SystemTime)> = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            let name = match path.file_name().and_then(|n| n.to_str()) {
                Some(n) => n.to_owned(),
                None => continue,
            };
            let meta = match entry.metadata() {
                Ok(m) if m.is_file() => m,
                _ => continue,
            };
            report.scanned += 1;
            let is_junk = name.ends_with(".bad") || name.contains(".ipgc.tmp");
            if is_junk {
                remove(&mut report, &path, meta.len());
                continue;
            }
            if name.ends_with(".ipgc") {
                let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                artifacts.push((path, meta.len(), mtime));
            }
        }

        // Newest-first within each name prefix, then newest-first overall
        // so the size budget evicts the oldest survivors.
        artifacts.sort_by_key(|a| std::cmp::Reverse(a.2));
        let mut seen = std::collections::HashSet::new();
        let now = std::time::SystemTime::now();
        let mut survivors: Vec<(PathBuf, u64, std::time::SystemTime)> = Vec::new();
        for (path, len, mtime) in artifacts {
            let prefix = name_prefix(&path);
            if !seen.insert(prefix) {
                remove(&mut report, &path, len);
                continue;
            }
            let expired = max_age.is_some_and(|limit| {
                now.duration_since(mtime).map(|age| age > limit).unwrap_or(false)
            });
            if expired {
                remove(&mut report, &path, len);
            } else {
                survivors.push((path, len, mtime));
            }
        }
        if let Some(budget) = max_bytes {
            let mut total: u64 = survivors.iter().map(|(_, len, _)| len).sum();
            while total > budget {
                let Some((path, len, _)) = survivors.pop() else { break };
                remove(&mut report, &path, len);
                total -= len;
            }
        }
        report.kept = survivors.len();
        Ok(report)
    }
}

/// The `{name}` portion of a cache file name (everything before the
/// trailing `-{hash:016x}.ipgc`), or the whole stem for foreign names.
fn name_prefix(path: &Path) -> String {
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or_default();
    match stem.rsplit_once('-') {
        Some((name, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            name.to_owned()
        }
        _ => stem.to_owned(),
    }
}

fn remove(report: &mut GcReport, path: &Path, len: u64) {
    if std::fs::remove_file(path).is_ok() {
        report.removed += 1;
        report.bytes_reclaimed += len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::parse_grammar;

    const FIG2: &str = r#"
        S -> H[0, 8] Data[H.offset, H.offset + H.length];
        H -> Int[0, 4] {offset = Int.val} Int[4, 8] {length = Int.val};
        Int := u32le;
        Data := bytes;
    "#;

    fn roundtrip(spec: &str) -> (Grammar, Artifact) {
        let g = parse_grammar(spec).unwrap();
        let bytes = encode_grammar(spec, &g);
        let artifact = decode(&bytes).expect("decode what we encoded");
        (g, artifact)
    }

    #[test]
    fn roundtrip_preserves_disassembly_anchor_and_hints() {
        let (g, artifact) = roundtrip(FIG2);
        let fresh = compile(&g);
        assert_eq!(artifact.program.disassemble(&g), fresh.disassemble(&g));
        assert_eq!(artifact.anchor, anchor_requirement(&g));
        let (fh, ah) = (fresh.size_hints(), artifact.hints);
        assert_eq!(
            (fh.frames, fh.nodes, fh.leaves, fh.children, fh.shifts),
            (ah.frames, ah.nodes, ah.leaves, ah.children, ah.shifts)
        );
    }

    #[test]
    fn loaded_program_parses_identically() {
        let (g, artifact) = roundtrip(FIG2);
        let reconstructed = artifact.reconstruct_grammar(Vec::new()).unwrap();
        let vm = artifact.into_parser(&reconstructed).unwrap();
        let mut input = vec![8u8, 0, 0, 0, 4, 0, 0, 0];
        input.extend_from_slice(b"DATA");
        let tree = vm.parse(&input).expect("loaded program parses");
        let h = tree.root().as_node().unwrap().child_node_nt(g.nt_id("H").unwrap()).unwrap();
        assert_eq!(h.attr(&reconstructed, "offset"), Some(8));
        assert_eq!(h.attr(&reconstructed, "length"), Some(4));
    }

    #[test]
    fn bad_magic_is_a_typed_error() {
        let g = parse_grammar(FIG2).unwrap();
        let mut bytes = encode_grammar(FIG2, &g);
        bytes[0] = b'X';
        match decode(&bytes) {
            Err(Error::Artifact(msg)) => assert!(msg.contains("magic"), "{msg}"),
            other => panic!("expected Artifact error, got {other:?}"),
        }
    }

    #[test]
    fn version_skew_is_a_typed_error() {
        let g = parse_grammar(FIG2).unwrap();
        let mut bytes = encode_grammar(FIG2, &g);
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        match decode(&bytes) {
            Err(Error::Artifact(msg)) => assert!(msg.contains("version skew"), "{msg}"),
            other => panic!("expected Artifact error, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let g = parse_grammar(FIG2).unwrap();
        let bytes = encode_grammar(FIG2, &g);
        for len in 0..bytes.len() {
            match decode(&bytes[..len]) {
                Err(Error::Artifact(_)) => {}
                other => {
                    panic!("truncation to {len} bytes: expected Artifact error, got {other:?}")
                }
            }
        }
    }

    #[test]
    fn every_single_byte_corruption_is_caught() {
        let g = parse_grammar(FIG2).unwrap();
        let bytes = encode_grammar(FIG2, &g);
        // Corrupting any payload byte must trip the checksum; corrupting
        // the header must trip magic/version/length/hash checks. (Header
        // fields `source_hash` are only validated against a grammar, so
        // flip payload + structural header bytes here.)
        for i in (0..bytes.len()).step_by(7) {
            if (8..16).contains(&i) {
                continue; // source hash: validated by validate_against below
            }
            let mut c = bytes.clone();
            c[i] ^= 0x5a;
            assert!(
                matches!(decode(&c), Err(Error::Artifact(_))),
                "flipping byte {i} went undetected"
            );
        }
    }

    #[test]
    fn source_hash_corruption_is_caught_against_the_grammar() {
        let g = parse_grammar(FIG2).unwrap();
        let mut bytes = encode_grammar(FIG2, &g);
        bytes[8] ^= 0xff;
        let artifact = decode(&bytes).expect("payload itself is intact");
        match artifact.validate_against(&g) {
            Err(Error::Artifact(msg)) => assert!(msg.contains("source hash"), "{msg}"),
            other => panic!("expected Artifact error, got {other:?}"),
        }
    }

    #[test]
    fn grammar_mismatch_is_a_typed_error() {
        let g = parse_grammar(FIG2).unwrap();
        let bytes = encode_grammar(FIG2, &g);
        let artifact = decode(&bytes).unwrap();
        let other = parse_grammar(r#"S -> "x"[0, 1];"#).unwrap();
        assert!(matches!(artifact.validate_against(&other), Err(Error::Artifact(_))));
    }

    #[test]
    fn cache_misses_then_hits() {
        let dir = std::env::temp_dir().join(format!("ipgc-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Cache::at(&dir);
        let (_, outcome) = cache.load_or_compile("fig2", FIG2, Vec::new()).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss(MissReason::Absent));
        let (cached, outcome) = cache.load_or_compile("fig2", FIG2, Vec::new()).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(cached.program.disassemble(&cached.grammar), {
            let g = parse_grammar(FIG2).unwrap();
            compile(&g).disassemble(&g)
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_self_heals_corrupt_artifacts() {
        let dir = std::env::temp_dir().join(format!("ipgc-heal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Cache::at(&dir);
        let (_, _) = cache.load_or_compile("fig2", FIG2, Vec::new()).unwrap();
        let path = cache.path_for("fig2", source_hash(FIG2, &[]));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (_, outcome) = cache.load_or_compile("fig2", FIG2, Vec::new()).unwrap();
        assert!(
            matches!(outcome, CacheOutcome::Miss(MissReason::Quarantined(_))),
            "corruption must quarantine and rewrite, got {outcome:?}"
        );
        assert_eq!(cache.quarantined(), 1);
        let mut bad = path.clone().into_os_string();
        bad.push(".bad");
        assert!(PathBuf::from(bad).exists(), "quarantined artifact must be preserved as .ipgc.bad");
        let (_, outcome) = cache.load_or_compile("fig2", FIG2, Vec::new()).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit, "rewrite must restore the artifact");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spec_change_changes_the_cache_key() {
        let a = source_hash(FIG2, &[]);
        let b = source_hash(r#"S -> "x"[0, 1];"#, &[]);
        assert_ne!(a, b);
        let bb = Blackbox::new("inflate", |_| Ok(Default::default()));
        assert_ne!(source_hash(FIG2, &[]), source_hash(FIG2, std::slice::from_ref(&bb)));
    }

    /// Rewrites v2 artifact bytes as the v1 format: trailer stripped,
    /// header version and source hash patched.
    fn downgrade_to_v1(bytes: &[u8], spec: &str) -> Vec<u8> {
        let mut v1 = bytes[..bytes.len() - TRAILER_MIN].to_vec();
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        v1[8..16].copy_from_slice(&source_hash_v(1, spec, &[]).to_le_bytes());
        v1
    }

    #[test]
    fn v1_artifacts_still_decode_and_validate() {
        let g = parse_grammar(FIG2).unwrap();
        let v1 = downgrade_to_v1(&encode_grammar(FIG2, &g), FIG2);
        let artifact = decode(&v1).expect("v1 decode stays supported");
        assert_eq!(artifact.version, 1);
        // validate_against must recompute the key at the artifact's own
        // version, not the loader's.
        artifact.validate_against(&g).expect("version-aware source hash");
        let reconstructed = artifact.reconstruct_grammar(Vec::new()).unwrap();
        let vm = artifact.into_parser(&reconstructed).unwrap();
        let mut input = vec![8u8, 0, 0, 0, 4, 0, 0, 0];
        input.extend_from_slice(b"DATA");
        vm.parse(&input).expect("v1 program parses");
    }

    #[test]
    fn v1_artifacts_are_rejected_under_a_key() {
        let g = parse_grammar(FIG2).unwrap();
        let v1 = downgrade_to_v1(&encode_grammar(FIG2, &g), FIG2);
        match verify(&v1, Some(b"k"), Vec::new()) {
            Err(VerifyError::Provenance(m)) => assert!(m.contains("trailer"), "{m}"),
            other => panic!("expected Provenance, got {other:?}"),
        }
    }

    #[test]
    fn signed_roundtrip_and_tamper_detection() {
        let g = parse_grammar(FIG2).unwrap();
        let program = compile(&g);
        let hints = program.size_hints();
        let anchor = anchor_requirement(&g);
        let key = b"test-key".as_slice();
        let signed = encode_signed(FIG2, &g, &program, anchor, hints, key);

        decode_with_key(&signed, Some(key)).expect("valid MAC accepted");
        decode_with_key(&signed, None).expect("no key: signature ignored, digest still checked");
        assert!(
            decode_with_key(&signed, Some(b"wrong-key")).is_err(),
            "wrong key must be rejected"
        );

        let mut tampered = signed.clone();
        let last = tampered.len() - 1;
        tampered[last] ^= 0x01; // flip a MAC byte
        match decode_with_key(&tampered, Some(key)) {
            Err(Error::Artifact(m)) => assert!(m.contains("MAC"), "{m}"),
            other => panic!("expected MAC failure, got {other:?}"),
        }

        let unsigned = encode(FIG2, &g, &program, anchor, hints);
        match verify(&unsigned, Some(key), Vec::new()) {
            Err(VerifyError::Provenance(m)) => assert!(m.contains("unsigned"), "{m}"),
            other => panic!("expected Provenance, got {other:?}"),
        }
    }

    #[test]
    fn verify_classifies_failures_by_stage() {
        let g = parse_grammar(FIG2).unwrap();
        let bytes = encode_grammar(FIG2, &g);

        let report = verify(&bytes, None, Vec::new()).expect("intact artifact verifies");
        assert_eq!(report.version, FORMAT_VERSION);
        assert!(!report.signed && !report.mac_checked);
        assert!(report.rules > 0 && report.symbols > 0);

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(verify(&bad_magic, None, Vec::new()), Err(VerifyError::Structural(_))));

        let mut skew = bytes.clone();
        skew[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            verify(&skew, None, Vec::new()),
            Err(VerifyError::VersionSkew { found: 99, .. })
        ));

        // Flip a byte inside the payload: the SHA-256 digest catches it
        // before any structural decode runs.
        let mut corrupt = bytes.clone();
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN - TRAILER_MIN) / 2;
        corrupt[mid] ^= 0xff;
        assert!(matches!(verify(&corrupt, None, Vec::new()), Err(VerifyError::Provenance(_))));

        // A consistent artifact whose embedded source disagrees with its
        // program: structural and provenance checks pass, reconstruction
        // does not.
        let other_spec = r#"S -> "x"[0, 1];"#;
        let program = compile(&g);
        let mismatched =
            encode(other_spec, &g, &program, anchor_requirement(&g), program.size_hints());
        assert!(matches!(verify(&mismatched, None, Vec::new()), Err(VerifyError::Mismatch(_))));
    }

    #[test]
    fn keyed_cache_signs_writes_and_quarantines_unsigned_hits() {
        let dir = std::env::temp_dir().join(format!("ipgc-key-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plain = Cache::at(&dir);
        let keyed = Cache::at(&dir).with_key(Some(b"cache-key".to_vec()));

        // A keyless writer leaves an unsigned artifact; the keyed reader
        // refuses it, quarantines it, and rewrites it signed.
        plain.load_or_compile("fig2", FIG2, Vec::new()).unwrap();
        let (_, outcome) = keyed.load_or_compile("fig2", FIG2, Vec::new()).unwrap();
        assert!(
            matches!(outcome, CacheOutcome::Miss(MissReason::Quarantined(_))),
            "unsigned hit under a key must quarantine, got {outcome:?}"
        );
        assert_eq!(keyed.quarantined(), 1);
        let (_, outcome) = keyed.load_or_compile("fig2", FIG2, Vec::new()).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit, "rewritten artifact is signed now");

        // A keyless reader accepts the signed artifact (digest intact,
        // MAC ignored).
        let (_, outcome) = plain.load_or_compile("fig2", FIG2, Vec::new()).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_keeps_newest_per_name_and_reports_bytes() {
        let dir = std::env::temp_dir().join(format!("ipgc-gc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cache = Cache::at(&dir);

        // Two generations of "fig2" (distinct cache keys), junk files,
        // and an unrelated current artifact.
        let old = dir.join("fig2-00000000deadbeef.ipgc");
        std::fs::write(&old, b"old-generation").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        cache.load_or_compile("fig2", FIG2, Vec::new()).unwrap();
        cache.load_or_compile("other", r#"S -> "x"[0, 1];"#, Vec::new()).unwrap();
        std::fs::write(dir.join("fig2-0123456789abcdef.ipgc.tmp.7"), b"torn write").unwrap();
        std::fs::write(dir.join("fig2-0123456789abcdef.ipgc.bad"), b"quarantined").unwrap();

        let report = cache.gc(None, None).unwrap();
        assert_eq!(report.scanned, 5);
        assert_eq!(report.removed, 3, "junk + superseded generation go");
        assert_eq!(report.kept, 2);
        assert!(report.bytes_reclaimed >= (b"old-generation".len() + b"torn write".len()) as u64);
        assert!(!old.exists());
        let (_, outcome) = cache.load_or_compile("fig2", FIG2, Vec::new()).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit, "current artifacts survive gc");

        // A zero-byte budget evicts everything that remains.
        let report = cache.gc(Some(0), None).unwrap();
        assert_eq!(report.kept, 0);
        assert_eq!(report.removed, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_of_a_missing_directory_is_empty_not_an_error() {
        let cache = Cache::at("/nonexistent/ipg-gc-test");
        assert_eq!(cache.gc(None, None).unwrap(), GcReport::default());
    }
}
