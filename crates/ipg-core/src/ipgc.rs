//! Persisted compiled grammars: the `.ipgc` artifact format and its
//! content-hash cache.
//!
//! Everything downstream of [`crate::bytecode::compile`] — the flat
//! [`Program`] pools, the [`AnchorRequirement`] streaming classification,
//! the [`SizeHints`] pre-sizing — is a pure function of the grammar
//! source and the blackbox declarations it was checked against. This
//! module makes that function's output a *build artifact*: a versioned,
//! self-describing binary file that a serve worker, test binary, or CLI
//! invocation loads instead of recompiling.
//!
//! ## Artifact layout
//!
//! All integers are little-endian.
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"IPGC"
//!      4     4  format version (u32) — see [`FORMAT_VERSION`]
//!      8     8  source hash (u64)   — cache key, see [`source_hash`]
//!     16     8  payload length (u64)
//!     24     8  payload hash (u64)  — FNV-1a over the payload bytes
//!     32     …  payload
//! ```
//!
//! The payload carries, length-prefixed and in order: the embedded `.ipg`
//! source, the interner's symbol table (pinning [`Sym`] assignment), the
//! start [`NtId`], the rule/alternative/instruction/expression/case/
//! literal pools of the [`Program`], the nonterminal name table, the
//! anchor classification, and the size hints.
//!
//! ## Versioning policy
//!
//! [`FORMAT_VERSION`] is bumped on **any** change to the payload encoding
//! or to the bytecode semantics it transports (new [`Instr`]/[`BExpr`]
//! variants, changed operand widths, …). There is no cross-version
//! migration: a version-skewed artifact fails to load with
//! [`Error::Artifact`] and the cache recompiles and rewrites it. Cache
//! file names embed the source hash, and the hash input includes the
//! format version, so artifacts from different toolchain versions never
//! collide in one cache directory.
//!
//! ## Integrity
//!
//! Loading is total: corrupt, truncated, or version-skewed bytes produce
//! a typed [`Error::Artifact`], never a panic. The payload hash catches
//! bit-level corruption; a structural validation pass re-checks every
//! cross-pool index against the decoded pool sizes; and
//! [`Artifact::reconstruct_grammar`] verifies the artifact against the
//! grammar re-checked from the embedded source (symbol-for-symbol, so
//! [`Sym`]/[`NtId`] identity across save/load is *checked*, not assumed).

use crate::analysis::{anchor_requirement, AnchorRequirement};
use crate::arena::NtTable;
use crate::blackbox::Blackbox;
use crate::bytecode::{
    compile, BExpr, ExprId, Instr, LitSpan, PAlt, PCase, PRule, PRuleKind, Program, SizeHints,
};
use crate::check::{Grammar, NtId};
use crate::error::{Error, Result};
use crate::intern::Sym;
use crate::interp::vm::VmParser;
use crate::syntax::{BinOp, Builtin};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The artifact magic bytes.
pub const MAGIC: [u8; 4] = *b"IPGC";

/// Current artifact format version. Bump on any encoding or bytecode
/// change; loaders reject other versions with [`Error::Artifact`].
pub const FORMAT_VERSION: u32 = 1;

/// Size of the fixed header preceding the payload.
pub const HEADER_LEN: usize = 32;

// ---------------------------------------------------------------------------
// Hashing (FNV-1a, 64-bit): no dependency, stable across platforms.
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a hasher used for both the cache key and the payload
/// checksum.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// Hashes raw bytes (the payload checksum).
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// The artifact cache key: a digest of everything the compiled program is
/// a function of — the format version, the grammar source, and the
/// blackbox declarations (name and attribute list; the *implementations*
/// are runtime-bound and do not affect compilation).
pub fn source_hash(spec: &str, blackboxes: &[Blackbox]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(&FORMAT_VERSION.to_le_bytes());
    h.update(&(spec.len() as u64).to_le_bytes());
    h.update(spec.as_bytes());
    h.update(&(blackboxes.len() as u64).to_le_bytes());
    for bb in blackboxes {
        h.update(&(bb.name.len() as u64).to_le_bytes());
        h.update(bb.name.as_bytes());
        h.update(&(bb.attrs.len() as u64).to_le_bytes());
        for a in &bb.attrs {
            h.update(&(a.len() as u64).to_le_bytes());
            h.update(a.as_bytes());
        }
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Byte-level writer / reader
// ---------------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::with_capacity(4096) }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }
    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end =
            self.pos.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
                Error::Artifact(format!("truncated payload at offset {}", self.pos))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A length-prefixed count, sanity-bounded so corrupt lengths fail
    /// cleanly instead of attempting a multi-gigabyte allocation.
    fn count(&mut self, what: &str) -> Result<usize> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        // Every counted element occupies at least one payload byte.
        if n > remaining {
            return Err(Error::Artifact(format!("implausible {what} count {n}")));
        }
        Ok(n as usize)
    }

    fn bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.count("byte-run")?;
        self.take(n)
    }

    fn str(&mut self) -> Result<String> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| Error::Artifact("non-UTF-8 string in payload".into()))
    }

    fn done(&self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(Error::Artifact(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Enum tags
// ---------------------------------------------------------------------------

fn builtin_tag(b: Builtin) -> u8 {
    match b {
        Builtin::U8 => 0,
        Builtin::U16Le => 1,
        Builtin::U16Be => 2,
        Builtin::U32Le => 3,
        Builtin::U32Be => 4,
        Builtin::U64Le => 5,
        Builtin::U64Be => 6,
        Builtin::AsciiInt => 7,
        Builtin::Bytes => 8,
    }
}

fn builtin_of(tag: u8) -> Result<Builtin> {
    Ok(match tag {
        0 => Builtin::U8,
        1 => Builtin::U16Le,
        2 => Builtin::U16Be,
        3 => Builtin::U32Le,
        4 => Builtin::U32Be,
        5 => Builtin::U64Le,
        6 => Builtin::U64Be,
        7 => Builtin::AsciiInt,
        8 => Builtin::Bytes,
        other => return Err(Error::Artifact(format!("unknown builtin tag {other}"))),
    })
}

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Mod => 4,
        BinOp::Eq => 5,
        BinOp::Ne => 6,
        BinOp::Lt => 7,
        BinOp::Gt => 8,
        BinOp::Le => 9,
        BinOp::Ge => 10,
        BinOp::And => 11,
        BinOp::Or => 12,
        BinOp::Shl => 13,
        BinOp::Shr => 14,
        BinOp::BitAnd => 15,
        BinOp::BitOr => 16,
    }
}

fn binop_of(tag: u8) -> Result<BinOp> {
    Ok(match tag {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Mod,
        5 => BinOp::Eq,
        6 => BinOp::Ne,
        7 => BinOp::Lt,
        8 => BinOp::Gt,
        9 => BinOp::Le,
        10 => BinOp::Ge,
        11 => BinOp::And,
        12 => BinOp::Or,
        13 => BinOp::Shl,
        14 => BinOp::Shr,
        15 => BinOp::BitAnd,
        16 => BinOp::BitOr,
        other => return Err(Error::Artifact(format!("unknown binop tag {other}"))),
    })
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Serializes a compiled grammar into `.ipgc` artifact bytes.
///
/// `spec` must be the exact source `grammar` was checked from: the loader
/// reconstructs the [`Grammar`] from it and cross-checks the program's
/// symbol and nonterminal tables against the result.
pub fn encode(
    spec: &str,
    grammar: &Grammar,
    program: &Program,
    anchor: AnchorRequirement,
    hints: SizeHints,
) -> Vec<u8> {
    let mut w = Writer::new();

    // 1. Embedded source.
    w.str(spec);

    // 2. Symbol table, in Sym order: pins Sym assignment across save/load.
    let interner = grammar.interner();
    w.u64(interner.len() as u64);
    for i in 0..interner.len() {
        w.str(interner.resolve(Sym(i as u32)));
    }

    // 3. Start nonterminal.
    w.u32(program.start.0);

    // 4. Rules.
    w.u64(program.rules.len() as u64);
    for rule in &program.rules {
        match rule.kind {
            PRuleKind::Alts { first, count } => {
                w.u8(0);
                w.u32(first);
                w.u32(count);
            }
            PRuleKind::Builtin(b) => {
                w.u8(1);
                w.u8(builtin_tag(b));
            }
            PRuleKind::Blackbox(idx) => {
                w.u8(2);
                w.u32(idx);
            }
        }
        w.u8(rule.is_local as u8);
    }

    // 5. Alternatives.
    w.u64(program.alts.len() as u64);
    for alt in &program.alts {
        w.u32(alt.first);
        w.u32(alt.count);
        w.u16(alt.n_slots);
    }

    // 6. Instructions.
    w.u64(program.code.len() as u64);
    for instr in &program.code {
        match *instr {
            Instr::Match { lit, lo, hi, slot } => {
                w.u8(0);
                w.u32(lit.start);
                w.u32(lit.len);
                w.u32(lo.0);
                w.u32(hi.0);
                w.u16(slot);
            }
            Instr::Call { nt, lo, hi, slot } => {
                w.u8(1);
                w.u32(nt.0);
                w.u32(lo.0);
                w.u32(hi.0);
                w.u16(slot);
            }
            Instr::Set { attr, expr } => {
                w.u8(2);
                w.u32(attr.0);
                w.u32(expr.0);
            }
            Instr::Guard { expr } => {
                w.u8(3);
                w.u32(expr.0);
            }
            Instr::Loop { var, from, to, nt, lo, hi, slot } => {
                w.u8(4);
                w.u32(var.0);
                w.u32(from.0);
                w.u32(to.0);
                w.u32(nt.0);
                w.u32(lo.0);
                w.u32(hi.0);
                w.u16(slot);
            }
            Instr::Star { nt, lo, hi, slot } => {
                w.u8(5);
                w.u32(nt.0);
                w.u32(lo.0);
                w.u32(hi.0);
                w.u16(slot);
            }
            Instr::Switch { first, count, slot } => {
                w.u8(6);
                w.u32(first);
                w.u16(count);
                w.u16(slot);
            }
        }
    }

    // 7. Expressions.
    w.u64(program.exprs.len() as u64);
    for expr in &program.exprs {
        match *expr {
            BExpr::Num(n) => {
                w.u8(0);
                w.i64(n);
            }
            BExpr::Bin(op, a, b) => {
                w.u8(1);
                w.u8(binop_tag(op));
                w.u32(a.0);
                w.u32(b.0);
            }
            BExpr::Cond(c, t, f) => {
                w.u8(2);
                w.u32(c.0);
                w.u32(t.0);
                w.u32(f.0);
            }
            BExpr::Eoi => w.u8(3),
            BExpr::Local(sym) => {
                w.u8(4);
                w.u32(sym.0);
            }
            BExpr::NtAttr { slot, nt, attr } => {
                w.u8(5);
                w.u16(slot);
                w.u32(nt.0);
                w.u32(attr.0);
            }
            BExpr::ElemAttr { slot, nt, index, attr } => {
                w.u8(6);
                w.u16(slot);
                w.u32(nt.0);
                w.u32(index.0);
                w.u32(attr.0);
            }
            BExpr::OuterAttr { nt, attr } => {
                w.u8(7);
                w.u32(nt.0);
                w.u32(attr.0);
            }
            BExpr::OuterElem { nt, index, attr } => {
                w.u8(8);
                w.u32(nt.0);
                w.u32(index.0);
                w.u32(attr.0);
            }
            BExpr::Exists { var, slot, nt, cond, then, els } => {
                w.u8(9);
                w.u32(var.0);
                match slot {
                    Some(s) => {
                        w.u8(1);
                        w.u16(s);
                    }
                    None => w.u8(0),
                }
                w.u32(nt.0);
                w.u32(cond.0);
                w.u32(then.0);
                w.u32(els.0);
            }
        }
    }

    // 8. Switch cases.
    w.u64(program.cases.len() as u64);
    for case in &program.cases {
        match case.cond {
            Some(c) => {
                w.u8(1);
                w.u32(c.0);
            }
            None => w.u8(0),
        }
        w.u32(case.nt.0);
        w.u32(case.lo.0);
        w.u32(case.hi.0);
    }

    // 9. Literal pool.
    w.bytes(&program.lits);

    // 10. Nonterminal name table.
    w.u64(program.nt_table.names.len() as u64);
    for (name, sym) in program.nt_table.names.iter().zip(&program.nt_table.syms) {
        w.str(name);
        w.u32(sym.0);
    }

    // 11. Anchor classification.
    match anchor {
        AnchorRequirement::Prefix => w.u8(0),
        AnchorRequirement::Suffix { k } => {
            w.u8(1);
            w.u64(k as u64);
        }
        AnchorRequirement::FullLength => w.u8(2),
    }

    // 12. Size hints.
    w.u64(hints.frames as u64);
    w.u64(hints.nodes as u64);
    w.u64(hints.leaves as u64);
    w.u64(hints.children as u64);
    w.u64(hints.shifts as u64);

    let payload = w.buf;
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&source_hash(spec, grammar.blackboxes()).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&hash_bytes(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Convenience: compile `grammar` and encode the result in one step.
pub fn encode_grammar(spec: &str, grammar: &Grammar) -> Vec<u8> {
    let program = compile(grammar);
    let hints = program.size_hints();
    let anchor = anchor_requirement(grammar);
    encode(spec, grammar, &program, anchor, hints)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A decoded `.ipgc` artifact: the program and its precomputed analyses,
/// plus the embedded source and symbol table needed to rebind it to a
/// [`Grammar`].
#[derive(Debug)]
pub struct Artifact {
    /// The embedded `.ipg` source the program was compiled from.
    pub spec: String,
    /// The deserialized bytecode program.
    pub program: Program,
    /// The persisted streaming classification.
    pub anchor: AnchorRequirement,
    /// The persisted VM pre-sizing hints.
    pub hints: SizeHints,
    /// The cache key recorded in the header.
    pub source_hash: u64,
    /// The interner's symbol table at compile time, in [`Sym`] order.
    pub symbols: Vec<String>,
}

/// Decodes and structurally validates artifact bytes.
///
/// # Errors
///
/// [`Error::Artifact`] on bad magic, version skew, truncation, checksum
/// mismatch, or any out-of-range cross-pool index. Never panics.
pub fn decode(bytes: &[u8]) -> Result<Artifact> {
    if bytes.len() < HEADER_LEN {
        return Err(Error::Artifact(format!(
            "file too short for header: {} bytes, need {HEADER_LEN}",
            bytes.len()
        )));
    }
    if bytes[..4] != MAGIC {
        return Err(Error::Artifact("bad magic (not an .ipgc artifact)".into()));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(Error::Artifact(format!(
            "format version skew: artifact v{version}, loader v{FORMAT_VERSION}"
        )));
    }
    let source_hash = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let payload_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let payload_hash = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
    let payload = &bytes[HEADER_LEN..];
    if payload.len() as u64 != payload_len {
        return Err(Error::Artifact(format!(
            "payload length mismatch: header says {payload_len}, file has {}",
            payload.len()
        )));
    }
    if hash_bytes(payload) != payload_hash {
        return Err(Error::Artifact("payload checksum mismatch (corrupt artifact)".into()));
    }

    let mut r = Reader::new(payload);

    // 1. Source.
    let spec = r.str()?;

    // 2. Symbol table.
    let n_syms = r.count("symbol")?;
    let mut symbols = Vec::with_capacity(n_syms);
    for _ in 0..n_syms {
        symbols.push(r.str()?);
    }

    // 3. Start nonterminal.
    let start = NtId(r.u32()?);

    // 4. Rules.
    let n_rules = r.count("rule")?;
    let mut rules = Vec::with_capacity(n_rules);
    for _ in 0..n_rules {
        let kind = match r.u8()? {
            0 => PRuleKind::Alts { first: r.u32()?, count: r.u32()? },
            1 => PRuleKind::Builtin(builtin_of(r.u8()?)?),
            2 => PRuleKind::Blackbox(r.u32()?),
            other => return Err(Error::Artifact(format!("unknown rule tag {other}"))),
        };
        let is_local = r.u8()? != 0;
        rules.push(PRule { kind, is_local });
    }

    // 5. Alternatives.
    let n_alts = r.count("alt")?;
    let mut alts = Vec::with_capacity(n_alts);
    for _ in 0..n_alts {
        alts.push(PAlt { first: r.u32()?, count: r.u32()?, n_slots: r.u16()? });
    }

    // 6. Instructions.
    let n_code = r.count("instruction")?;
    let mut code = Vec::with_capacity(n_code);
    for _ in 0..n_code {
        let instr = match r.u8()? {
            0 => Instr::Match {
                lit: LitSpan { start: r.u32()?, len: r.u32()? },
                lo: ExprId(r.u32()?),
                hi: ExprId(r.u32()?),
                slot: r.u16()?,
            },
            1 => Instr::Call {
                nt: NtId(r.u32()?),
                lo: ExprId(r.u32()?),
                hi: ExprId(r.u32()?),
                slot: r.u16()?,
            },
            2 => Instr::Set { attr: Sym(r.u32()?), expr: ExprId(r.u32()?) },
            3 => Instr::Guard { expr: ExprId(r.u32()?) },
            4 => Instr::Loop {
                var: Sym(r.u32()?),
                from: ExprId(r.u32()?),
                to: ExprId(r.u32()?),
                nt: NtId(r.u32()?),
                lo: ExprId(r.u32()?),
                hi: ExprId(r.u32()?),
                slot: r.u16()?,
            },
            5 => Instr::Star {
                nt: NtId(r.u32()?),
                lo: ExprId(r.u32()?),
                hi: ExprId(r.u32()?),
                slot: r.u16()?,
            },
            6 => Instr::Switch { first: r.u32()?, count: r.u16()?, slot: r.u16()? },
            other => return Err(Error::Artifact(format!("unknown instruction tag {other}"))),
        };
        code.push(instr);
    }

    // 7. Expressions.
    let n_exprs = r.count("expression")?;
    let mut exprs = Vec::with_capacity(n_exprs);
    for _ in 0..n_exprs {
        let expr = match r.u8()? {
            0 => BExpr::Num(r.i64()?),
            1 => BExpr::Bin(binop_of(r.u8()?)?, ExprId(r.u32()?), ExprId(r.u32()?)),
            2 => BExpr::Cond(ExprId(r.u32()?), ExprId(r.u32()?), ExprId(r.u32()?)),
            3 => BExpr::Eoi,
            4 => BExpr::Local(Sym(r.u32()?)),
            5 => BExpr::NtAttr { slot: r.u16()?, nt: NtId(r.u32()?), attr: Sym(r.u32()?) },
            6 => BExpr::ElemAttr {
                slot: r.u16()?,
                nt: NtId(r.u32()?),
                index: ExprId(r.u32()?),
                attr: Sym(r.u32()?),
            },
            7 => BExpr::OuterAttr { nt: NtId(r.u32()?), attr: Sym(r.u32()?) },
            8 => BExpr::OuterElem {
                nt: NtId(r.u32()?),
                index: ExprId(r.u32()?),
                attr: Sym(r.u32()?),
            },
            9 => {
                let var = Sym(r.u32()?);
                let slot = match r.u8()? {
                    0 => None,
                    1 => Some(r.u16()?),
                    other => {
                        return Err(Error::Artifact(format!("bad option tag {other} in Exists")))
                    }
                };
                BExpr::Exists {
                    var,
                    slot,
                    nt: NtId(r.u32()?),
                    cond: ExprId(r.u32()?),
                    then: ExprId(r.u32()?),
                    els: ExprId(r.u32()?),
                }
            }
            other => return Err(Error::Artifact(format!("unknown expression tag {other}"))),
        };
        exprs.push(expr);
    }

    // 8. Cases.
    let n_cases = r.count("case")?;
    let mut cases = Vec::with_capacity(n_cases);
    for _ in 0..n_cases {
        let cond = match r.u8()? {
            0 => None,
            1 => Some(ExprId(r.u32()?)),
            other => return Err(Error::Artifact(format!("bad option tag {other} in case"))),
        };
        cases.push(PCase { cond, nt: NtId(r.u32()?), lo: ExprId(r.u32()?), hi: ExprId(r.u32()?) });
    }

    // 9. Literal pool.
    let lits = r.bytes()?.to_vec();

    // 10. Nonterminal table.
    let n_nts = r.count("nonterminal")?;
    let mut names = Vec::with_capacity(n_nts);
    let mut nt_syms = Vec::with_capacity(n_nts);
    for _ in 0..n_nts {
        names.push(Arc::<str>::from(r.str()?));
        nt_syms.push(Sym(r.u32()?));
    }

    // 11. Anchor classification.
    let anchor = match r.u8()? {
        0 => AnchorRequirement::Prefix,
        1 => AnchorRequirement::Suffix { k: r.u64()? as usize },
        2 => AnchorRequirement::FullLength,
        other => return Err(Error::Artifact(format!("unknown anchor tag {other}"))),
    };

    // 12. Size hints.
    let hints = SizeHints {
        frames: r.u64()? as usize,
        nodes: r.u64()? as usize,
        leaves: r.u64()? as usize,
        children: r.u64()? as usize,
        shifts: r.u64()? as usize,
    };

    r.done()?;

    let program = Program {
        rules,
        alts,
        code,
        exprs,
        cases,
        lits,
        nt_table: Arc::new(NtTable { names, syms: nt_syms }),
        start,
    };
    let artifact = Artifact { spec, program, anchor, hints, source_hash, symbols };
    artifact.validate_structure()?;
    Ok(artifact)
}

impl Artifact {
    /// Verifies every cross-pool index of the decoded program, so that a
    /// crafted (checksum-consistent) artifact can still never drive the
    /// VM out of bounds.
    fn validate_structure(&self) -> Result<()> {
        let p = &self.program;
        let n_rules = p.rules.len() as u32;
        let n_alts = p.alts.len() as u32;
        let n_code = p.code.len() as u32;
        let n_exprs = p.exprs.len() as u32;
        let n_cases = p.cases.len() as u32;
        let n_lits = p.lits.len() as u32;
        let n_syms = self.symbols.len() as u32;
        let err = |msg: String| Err(Error::Artifact(msg));

        let nt = |id: NtId| {
            if id.0 >= n_rules {
                return err(format!("nonterminal id {} out of range ({n_rules} rules)", id.0));
            }
            Ok(())
        };
        let ex = |id: ExprId| {
            if id.0 >= n_exprs {
                return err(format!("expression id {} out of range ({n_exprs} exprs)", id.0));
            }
            Ok(())
        };
        let sym = |s: Sym| {
            if s.0 >= n_syms {
                return err(format!("symbol {} out of range ({n_syms} symbols)", s.0));
            }
            Ok(())
        };

        if p.nt_table.names.len() != p.rules.len() {
            return err(format!(
                "nonterminal table has {} names for {} rules",
                p.nt_table.names.len(),
                p.rules.len()
            ));
        }
        nt(p.start)?;
        for s in &p.nt_table.syms {
            sym(*s)?;
        }

        for rule in &p.rules {
            if let PRuleKind::Alts { first, count } = rule.kind {
                if u64::from(first) + u64::from(count) > u64::from(n_alts) {
                    return err(format!("alt span {first}+{count} out of range ({n_alts} alts)"));
                }
            }
        }
        for alt in &p.alts {
            if u64::from(alt.first) + u64::from(alt.count) > u64::from(n_code) {
                return err(format!(
                    "instruction span {}+{} out of range ({n_code} instrs)",
                    alt.first, alt.count
                ));
            }
        }
        for instr in &p.code {
            match *instr {
                Instr::Match { lit, lo, hi, .. } => {
                    if u64::from(lit.start) + u64::from(lit.len) > u64::from(n_lits) {
                        return err(format!(
                            "literal span {}+{} out of range ({n_lits} bytes)",
                            lit.start, lit.len
                        ));
                    }
                    ex(lo)?;
                    ex(hi)?;
                }
                Instr::Call { nt: callee, lo, hi, .. } => {
                    nt(callee)?;
                    ex(lo)?;
                    ex(hi)?;
                }
                Instr::Set { attr, expr } => {
                    sym(attr)?;
                    ex(expr)?;
                }
                Instr::Guard { expr } => ex(expr)?,
                Instr::Loop { var, from, to, nt: callee, lo, hi, .. } => {
                    sym(var)?;
                    ex(from)?;
                    ex(to)?;
                    nt(callee)?;
                    ex(lo)?;
                    ex(hi)?;
                }
                Instr::Star { nt: callee, lo, hi, .. } => {
                    nt(callee)?;
                    ex(lo)?;
                    ex(hi)?;
                }
                Instr::Switch { first, count, .. } => {
                    if u64::from(first) + u64::from(count) > u64::from(n_cases) {
                        return err(format!(
                            "case span {first}+{count} out of range ({n_cases} cases)"
                        ));
                    }
                }
            }
        }
        for e in &p.exprs {
            match *e {
                BExpr::Num(_) | BExpr::Eoi => {}
                BExpr::Bin(_, a, b) => {
                    ex(a)?;
                    ex(b)?;
                }
                BExpr::Cond(c, t, f) => {
                    ex(c)?;
                    ex(t)?;
                    ex(f)?;
                }
                BExpr::Local(s) => sym(s)?,
                BExpr::NtAttr { nt: n, attr, .. } => {
                    nt(n)?;
                    sym(attr)?;
                }
                BExpr::ElemAttr { nt: n, index, attr, .. } => {
                    nt(n)?;
                    ex(index)?;
                    sym(attr)?;
                }
                BExpr::OuterAttr { nt: n, attr } => {
                    nt(n)?;
                    sym(attr)?;
                }
                BExpr::OuterElem { nt: n, index, attr } => {
                    nt(n)?;
                    ex(index)?;
                    sym(attr)?;
                }
                BExpr::Exists { var, nt: n, cond, then, els, .. } => {
                    sym(var)?;
                    nt(n)?;
                    ex(cond)?;
                    ex(then)?;
                    ex(els)?;
                }
            }
        }
        for case in &p.cases {
            if let Some(c) = case.cond {
                ex(c)?;
            }
            nt(case.nt)?;
            ex(case.lo)?;
            ex(case.hi)?;
        }
        Ok(())
    }

    /// Re-checks the embedded source (binding `blackboxes` by name) and
    /// verifies that the resulting grammar assigns exactly the symbols and
    /// nonterminal ids the program was compiled with.
    ///
    /// # Errors
    ///
    /// [`Error::Artifact`] when the reconstructed grammar disagrees with
    /// the artifact (which would make the program's pre-resolved ids dangle);
    /// frontend/check errors if the embedded source no longer parses.
    pub fn reconstruct_grammar(&self, blackboxes: Vec<Blackbox>) -> Result<Grammar> {
        let grammar = crate::frontend::parse_grammar_with(&self.spec, blackboxes)?;
        self.validate_against(&grammar)?;
        Ok(grammar)
    }

    /// Verifies the artifact against an already-checked grammar: same
    /// cache key, same symbol table, same nonterminal table, same start
    /// id, and in-range blackbox indices.
    pub fn validate_against(&self, grammar: &Grammar) -> Result<()> {
        let expected = source_hash(&self.spec, grammar.blackboxes());
        if expected != self.source_hash {
            return Err(Error::Artifact(format!(
                "source hash mismatch: artifact {:016x}, grammar {expected:016x}",
                self.source_hash
            )));
        }
        let interner = grammar.interner();
        if interner.len() != self.symbols.len() {
            return Err(Error::Artifact(format!(
                "symbol table size mismatch: artifact {}, grammar {}",
                self.symbols.len(),
                interner.len()
            )));
        }
        for (i, name) in self.symbols.iter().enumerate() {
            let actual = interner.resolve(Sym(i as u32));
            if actual != name {
                return Err(Error::Artifact(format!(
                    "symbol {i} mismatch: artifact `{name}`, grammar `{actual}`"
                )));
            }
        }
        if self.program.rules.len() != grammar.nt_count() {
            return Err(Error::Artifact(format!(
                "rule count mismatch: artifact {}, grammar {}",
                self.program.rules.len(),
                grammar.nt_count()
            )));
        }
        if self.program.start != grammar.start_nt() {
            return Err(Error::Artifact(format!(
                "start nonterminal mismatch: artifact {}, grammar {}",
                self.program.start.0,
                grammar.start_nt().0
            )));
        }
        for (i, (name, sym)) in
            self.program.nt_table.names.iter().zip(&self.program.nt_table.syms).enumerate()
        {
            let nt = NtId(i as u32);
            if grammar.nt_name(nt) != &**name {
                return Err(Error::Artifact(format!(
                    "nonterminal {i} name mismatch: artifact `{name}`, grammar `{}`",
                    grammar.nt_name(nt)
                )));
            }
            if grammar.nt_name_sym(nt) != *sym {
                return Err(Error::Artifact(format!("nonterminal {i} symbol mismatch")));
            }
        }
        for rule in &self.program.rules {
            if let PRuleKind::Blackbox(idx) = rule.kind {
                if idx as usize >= grammar.blackboxes().len() {
                    return Err(Error::Artifact(format!(
                        "blackbox index {idx} out of range ({} registered)",
                        grammar.blackboxes().len()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Binds the artifact to its reconstructed grammar, producing a
    /// ready-to-run [`VmParser`] without recompiling the bytecode.
    pub fn into_parser(self, grammar: &Grammar) -> Result<VmParser<'_>> {
        self.validate_against(grammar)?;
        Ok(VmParser::from_compiled(grammar, self.program, self.anchor, self.hints))
    }
}

// ---------------------------------------------------------------------------
// The on-disk cache
// ---------------------------------------------------------------------------

/// Why a cache lookup compiled from source instead of loading.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MissReason {
    /// No artifact file for this cache key.
    Absent,
    /// An artifact existed but failed to load (version skew, corruption,
    /// or a grammar mismatch); it was recompiled and rewritten.
    Invalid(String),
}

/// The outcome of one [`Cache::load_or_compile`] call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The program was deserialized from a fresh artifact.
    Hit,
    /// The program was compiled from source (and the artifact rewritten).
    Miss(MissReason),
}

/// A compiled grammar as handed out by the cache: the checked grammar
/// plus the program and precomputed analyses, ready for
/// [`VmParser::from_compiled`].
#[derive(Debug)]
pub struct CachedProgram {
    /// The checked grammar (reconstructed or freshly checked).
    pub grammar: Grammar,
    /// The bytecode program (deserialized or freshly compiled).
    pub program: Program,
    /// Streaming classification.
    pub anchor: AnchorRequirement,
    /// VM pre-sizing hints.
    pub hints: SizeHints,
    /// The artifact cache key.
    pub source_hash: u64,
}

impl CachedProgram {
    /// Compiles `spec` in memory, bypassing any artifact I/O.
    pub fn compile(spec: &str, blackboxes: Vec<Blackbox>) -> Result<CachedProgram> {
        let grammar = crate::frontend::parse_grammar_with(spec, blackboxes)?;
        let program = compile(&grammar);
        let hints = program.size_hints();
        let anchor = anchor_requirement(&grammar);
        let source_hash = source_hash(spec, grammar.blackboxes());
        Ok(CachedProgram { grammar, program, anchor, hints, source_hash })
    }
}

/// A directory of `.ipgc` artifacts keyed by [`source_hash`].
///
/// File names are `<name>-<hash:016x>.ipgc`; writes go through a unique
/// temporary file plus an atomic rename, so concurrent processes warming
/// the same cache never observe partial artifacts.
#[derive(Clone, Debug)]
pub struct Cache {
    dir: PathBuf,
}

impl Cache {
    /// A cache rooted at `dir` (created lazily on first write).
    pub fn at(dir: impl Into<PathBuf>) -> Cache {
        Cache { dir: dir.into() }
    }

    /// The cache honoring the environment: `IPG_CACHE_DIR` if set,
    /// otherwise `$XDG_CACHE_HOME/ipg`, otherwise `~/.cache/ipg`, falling
    /// back to `<tmp>/ipg-cache`. Returns `None` when `IPG_NO_CACHE` is
    /// set (callers then compile in memory).
    pub fn from_env() -> Option<Cache> {
        if std::env::var_os("IPG_NO_CACHE").is_some() {
            return None;
        }
        if let Some(dir) = std::env::var_os("IPG_CACHE_DIR") {
            return Some(Cache::at(PathBuf::from(dir)));
        }
        if let Some(xdg) = std::env::var_os("XDG_CACHE_HOME") {
            return Some(Cache::at(PathBuf::from(xdg).join("ipg")));
        }
        if let Some(home) = std::env::var_os("HOME") {
            return Some(Cache::at(PathBuf::from(home).join(".cache").join("ipg")));
        }
        Some(Cache::at(std::env::temp_dir().join("ipg-cache")))
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The artifact path for grammar `name` with the given cache key.
    pub fn path_for(&self, name: &str, hash: u64) -> PathBuf {
        // Grammar names come from module names or file stems; sanitize so
        // a hostile name cannot escape the cache directory.
        let safe: String = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        self.dir.join(format!("{safe}-{hash:016x}.ipgc"))
    }

    /// Loads the artifact for (`name`, `spec`, `blackboxes`) if a fresh
    /// one exists, otherwise compiles from source and (re)writes it.
    ///
    /// Loading is self-healing: any load failure — missing file, version
    /// skew, corruption, grammar mismatch — falls back to compiling, and
    /// the reason is reported in the [`CacheOutcome`].
    ///
    /// # Errors
    ///
    /// Only compilation errors (bad spec) are fatal; artifact and I/O
    /// problems degrade to a miss.
    pub fn load_or_compile(
        &self,
        name: &str,
        spec: &str,
        blackboxes: Vec<Blackbox>,
    ) -> Result<(CachedProgram, CacheOutcome)> {
        let hash = source_hash(spec, &blackboxes);
        let path = self.path_for(name, hash);
        let reason = match std::fs::read(&path) {
            Ok(bytes) => match self.try_load(&bytes, spec, blackboxes.clone()) {
                Ok(cached) => return Ok((cached, CacheOutcome::Hit)),
                Err(e) => MissReason::Invalid(e.to_string()),
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => MissReason::Absent,
            Err(e) => MissReason::Invalid(format!("cannot read {}: {e}", path.display())),
        };
        let cached = CachedProgram::compile(spec, blackboxes)?;
        let bytes = encode(spec, &cached.grammar, &cached.program, cached.anchor, cached.hints);
        // Cache writes are best-effort: a read-only cache dir must not
        // break parsing.
        let _ = self.write_atomic(&path, &bytes);
        Ok((cached, CacheOutcome::Miss(reason)))
    }

    fn try_load(
        &self,
        bytes: &[u8],
        spec: &str,
        blackboxes: Vec<Blackbox>,
    ) -> Result<CachedProgram> {
        let artifact = decode(bytes)?;
        if artifact.spec != spec {
            return Err(Error::Artifact("embedded source differs from requested spec".into()));
        }
        let grammar = artifact.reconstruct_grammar(blackboxes)?;
        let Artifact { program, anchor, hints, source_hash, .. } = artifact;
        Ok(CachedProgram { grammar, program, anchor, hints, source_hash })
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let tmp = path.with_extension(format!("ipgc.tmp.{}", std::process::id()));
        std::fs::write(&tmp, bytes)?;
        match std::fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::parse_grammar;

    const FIG2: &str = r#"
        S -> H[0, 8] Data[H.offset, H.offset + H.length];
        H -> Int[0, 4] {offset = Int.val} Int[4, 8] {length = Int.val};
        Int := u32le;
        Data := bytes;
    "#;

    fn roundtrip(spec: &str) -> (Grammar, Artifact) {
        let g = parse_grammar(spec).unwrap();
        let bytes = encode_grammar(spec, &g);
        let artifact = decode(&bytes).expect("decode what we encoded");
        (g, artifact)
    }

    #[test]
    fn roundtrip_preserves_disassembly_anchor_and_hints() {
        let (g, artifact) = roundtrip(FIG2);
        let fresh = compile(&g);
        assert_eq!(artifact.program.disassemble(&g), fresh.disassemble(&g));
        assert_eq!(artifact.anchor, anchor_requirement(&g));
        let (fh, ah) = (fresh.size_hints(), artifact.hints);
        assert_eq!(
            (fh.frames, fh.nodes, fh.leaves, fh.children, fh.shifts),
            (ah.frames, ah.nodes, ah.leaves, ah.children, ah.shifts)
        );
    }

    #[test]
    fn loaded_program_parses_identically() {
        let (g, artifact) = roundtrip(FIG2);
        let reconstructed = artifact.reconstruct_grammar(Vec::new()).unwrap();
        let vm = artifact.into_parser(&reconstructed).unwrap();
        let mut input = vec![8u8, 0, 0, 0, 4, 0, 0, 0];
        input.extend_from_slice(b"DATA");
        let tree = vm.parse(&input).expect("loaded program parses");
        let h = tree.root().as_node().unwrap().child_node_nt(g.nt_id("H").unwrap()).unwrap();
        assert_eq!(h.attr(&reconstructed, "offset"), Some(8));
        assert_eq!(h.attr(&reconstructed, "length"), Some(4));
    }

    #[test]
    fn bad_magic_is_a_typed_error() {
        let g = parse_grammar(FIG2).unwrap();
        let mut bytes = encode_grammar(FIG2, &g);
        bytes[0] = b'X';
        match decode(&bytes) {
            Err(Error::Artifact(msg)) => assert!(msg.contains("magic"), "{msg}"),
            other => panic!("expected Artifact error, got {other:?}"),
        }
    }

    #[test]
    fn version_skew_is_a_typed_error() {
        let g = parse_grammar(FIG2).unwrap();
        let mut bytes = encode_grammar(FIG2, &g);
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        match decode(&bytes) {
            Err(Error::Artifact(msg)) => assert!(msg.contains("version skew"), "{msg}"),
            other => panic!("expected Artifact error, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let g = parse_grammar(FIG2).unwrap();
        let bytes = encode_grammar(FIG2, &g);
        for len in 0..bytes.len() {
            match decode(&bytes[..len]) {
                Err(Error::Artifact(_)) => {}
                other => {
                    panic!("truncation to {len} bytes: expected Artifact error, got {other:?}")
                }
            }
        }
    }

    #[test]
    fn every_single_byte_corruption_is_caught() {
        let g = parse_grammar(FIG2).unwrap();
        let bytes = encode_grammar(FIG2, &g);
        // Corrupting any payload byte must trip the checksum; corrupting
        // the header must trip magic/version/length/hash checks. (Header
        // fields `source_hash` are only validated against a grammar, so
        // flip payload + structural header bytes here.)
        for i in (0..bytes.len()).step_by(7) {
            if (8..16).contains(&i) {
                continue; // source hash: validated by validate_against below
            }
            let mut c = bytes.clone();
            c[i] ^= 0x5a;
            assert!(
                matches!(decode(&c), Err(Error::Artifact(_))),
                "flipping byte {i} went undetected"
            );
        }
    }

    #[test]
    fn source_hash_corruption_is_caught_against_the_grammar() {
        let g = parse_grammar(FIG2).unwrap();
        let mut bytes = encode_grammar(FIG2, &g);
        bytes[8] ^= 0xff;
        let artifact = decode(&bytes).expect("payload itself is intact");
        match artifact.validate_against(&g) {
            Err(Error::Artifact(msg)) => assert!(msg.contains("source hash"), "{msg}"),
            other => panic!("expected Artifact error, got {other:?}"),
        }
    }

    #[test]
    fn grammar_mismatch_is_a_typed_error() {
        let g = parse_grammar(FIG2).unwrap();
        let bytes = encode_grammar(FIG2, &g);
        let artifact = decode(&bytes).unwrap();
        let other = parse_grammar(r#"S -> "x"[0, 1];"#).unwrap();
        assert!(matches!(artifact.validate_against(&other), Err(Error::Artifact(_))));
    }

    #[test]
    fn cache_misses_then_hits() {
        let dir = std::env::temp_dir().join(format!("ipgc-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Cache::at(&dir);
        let (_, outcome) = cache.load_or_compile("fig2", FIG2, Vec::new()).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss(MissReason::Absent));
        let (cached, outcome) = cache.load_or_compile("fig2", FIG2, Vec::new()).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(cached.program.disassemble(&cached.grammar), {
            let g = parse_grammar(FIG2).unwrap();
            compile(&g).disassemble(&g)
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_self_heals_corrupt_artifacts() {
        let dir = std::env::temp_dir().join(format!("ipgc-heal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Cache::at(&dir);
        let (_, _) = cache.load_or_compile("fig2", FIG2, Vec::new()).unwrap();
        let path = cache.path_for("fig2", source_hash(FIG2, &[]));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (_, outcome) = cache.load_or_compile("fig2", FIG2, Vec::new()).unwrap();
        assert!(
            matches!(outcome, CacheOutcome::Miss(MissReason::Invalid(_))),
            "corruption must degrade to a rewrite, got {outcome:?}"
        );
        let (_, outcome) = cache.load_or_compile("fig2", FIG2, Vec::new()).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit, "rewrite must restore the artifact");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spec_change_changes_the_cache_key() {
        let a = source_hash(FIG2, &[]);
        let b = source_hash(r#"S -> "x"[0, 1];"#, &[]);
        assert_ne!(a, b);
        let bb = Blackbox::new("inflate", |_| Ok(Default::default()));
        assert_ne!(source_hash(FIG2, &[]), source_hash(FIG2, std::slice::from_ref(&bb)));
    }
}
