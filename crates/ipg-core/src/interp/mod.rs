//! The IPG parsing semantics (Fig. 8 and Fig. 15 of the paper) as a
//! memoizing recursive-descent interpreter.
//!
//! Each nonterminal invocation receives a *local input slice*, identified
//! by an absolute `(base, len)` pair into the original input — parsing is
//! zero-copy. Within a rule, `EOI` is `len` and all interval endpoints are
//! relative to `base`.
//!
//! Key properties implemented exactly as in the paper:
//!
//! * **Biased choice** — alternatives are tried in order; the first success
//!   wins (rules R-AltSucc/R-AltFail).
//! * **`start`/`end` bookkeeping** — `updStartEnd` widens the touched
//!   region of the enclosing environment; a callee's `start`/`end` are
//!   shifted by its interval's left endpoint on return (rule T-NTSucc).
//! * **Memoization** — results (including failures) of non-local
//!   nonterminals are cached per `(nonterminal, base, len)`, giving the
//!   O(n²) bound of §3.3. Local (`where`) rules close over their invoking
//!   environment and are never memoized.
//! * **Local rules** — evaluate with the invoking alternative's context as
//!   a fallback for attribute lookups (§3.4).

use crate::builtin::run_builtin;
use crate::check::{CAlt, CExpr, CInterval, CRuleBody, CSwitchCase, CTermKind, Grammar, NtId};
use crate::env::{wellknown, Env};
use crate::error::{Error, ParseError, Result};
use crate::syntax::BinOp;
use crate::tree::{ArrayNode, BlackboxNode, Leaf, Node, Tree};
use fxhash::FxHashMap;
use std::rc::Rc;

/// A configured IPG parser for one grammar.
///
/// ```
/// use ipg_core::frontend::parse_grammar;
/// use ipg_core::interp::Parser;
///
/// // Fig. 1 of the paper: accepts "aa…bb".
/// let g = parse_grammar(
///     r#"
///     S -> A[0, 2] B[EOI - 2, EOI];
///     A -> "aa"[0, 2];
///     B -> "bb"[0, 2];
///     "#,
/// )?;
/// let parser = Parser::new(&g);
/// assert!(parser.parse(b"aaxyzbb").is_ok());
/// assert!(parser.parse(b"aaxyzbc").is_err());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Parser<'g> {
    grammar: &'g Grammar,
    memoize: bool,
    max_steps: Option<u64>,
}

impl<'g> Parser<'g> {
    /// Creates a parser with memoization enabled and no step limit.
    pub fn new(grammar: &'g Grammar) -> Self {
        Parser { grammar, memoize: true, max_steps: None }
    }

    /// Enables or disables memoization (the `ablation_memo` benchmark uses
    /// this; real parsers should leave it on).
    pub fn memoize(mut self, on: bool) -> Self {
        self.memoize = on;
        self
    }

    /// Limits the number of term evaluations, as a defence-in-depth fuel
    /// bound for grammars that did not go through
    /// [`crate::termination::check_termination`].
    pub fn max_steps(mut self, steps: u64) -> Self {
        self.max_steps = Some(steps);
        self
    }

    /// Parses `input` from the grammar's start nonterminal.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] with the deepest failure observed when the
    /// input does not match.
    pub fn parse(&self, input: &[u8]) -> Result<Rc<Tree>> {
        self.parse_from(self.grammar.start_nt(), input)
    }

    /// Parses `input` from an explicit start nonterminal.
    ///
    /// # Errors
    ///
    /// As [`Parser::parse`]; additionally [`Error::Grammar`] if `name` is
    /// not a nonterminal of the grammar.
    pub fn parse_from_name(&self, name: &str, input: &[u8]) -> Result<Rc<Tree>> {
        let nt = self
            .grammar
            .nt_id(name)
            .ok_or_else(|| Error::Grammar(format!("unknown nonterminal `{name}`")))?;
        self.parse_from(nt, input)
    }

    /// Like [`Parser::parse`], but also reports interpreter statistics
    /// (steps, memo activity) — useful for the memoization ablation and
    /// for tuning grammars.
    ///
    /// # Errors
    ///
    /// As [`Parser::parse`].
    pub fn parse_with_stats(&self, input: &[u8]) -> (Result<Rc<Tree>>, ParseStats) {
        self.parse_from_with_stats(self.grammar.start_nt(), input)
    }

    fn parse_from_with_stats(&self, nt: NtId, input: &[u8]) -> (Result<Rc<Tree>>, ParseStats) {
        let mut sess = self.session(input);
        let result = match sess.parse_nt(nt, 0, input.len(), None) {
            Ok(Some(tree)) => Ok(tree),
            Ok(None) => Err(Error::Parse(sess.deepest.clone())),
            Err(Abort::FuelExhausted) => Err(Error::Parse(ParseError {
                offset: sess.deepest.offset,
                nonterminal: sess.deepest.nonterminal.clone(),
                msg: "step limit exhausted".into(),
            })),
        };
        let stats = ParseStats {
            steps: sess.steps,
            memo_hits: sess.memo_hits,
            memo_entries: sess.memo.len(),
        };
        (result, stats)
    }

    fn session<'i>(&self, input: &'i [u8]) -> Session<'g, 'i> {
        // Pre-size the memo from grammar size: each non-local nonterminal
        // tends to be invoked at a handful of distinct (base, len) slices,
        // so this avoids the rehash-and-move churn of growing from empty.
        // FxHash (vs the default SipHash) makes the short tuple keys cheap.
        // With memoization off the map is never written, so skip the
        // allocation entirely.
        let memo_capacity = if self.memoize { 8 * self.grammar.nt_count() } else { 0 };
        Session {
            g: self.grammar,
            input,
            memo: FxHashMap::with_capacity_and_hasher(memo_capacity, Default::default()),
            memoize: self.memoize,
            steps: 0,
            memo_hits: 0,
            max_steps: self.max_steps.unwrap_or(u64::MAX),
            deepest: ParseError { offset: 0, nonterminal: None, msg: "no progress".into() },
        }
    }

    /// Parses `input` from nonterminal `nt`.
    ///
    /// # Errors
    ///
    /// As [`Parser::parse`].
    pub fn parse_from(&self, nt: NtId, input: &[u8]) -> Result<Rc<Tree>> {
        let mut sess = self.session(input);
        match sess.parse_nt(nt, 0, input.len(), None) {
            Ok(Some(tree)) => Ok(tree),
            Ok(None) => Err(Error::Parse(sess.deepest)),
            Err(Abort::FuelExhausted) => Err(Error::Parse(ParseError {
                offset: sess.deepest.offset,
                nonterminal: sess.deepest.nonterminal,
                msg: format!(
                    "step limit of {} exhausted (possible non-terminating grammar)",
                    self.max_steps.unwrap_or(u64::MAX)
                ),
            })),
        }
    }
}

/// Interpreter statistics from [`Parser::parse_with_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParseStats {
    /// Term evaluations performed.
    pub steps: u64,
    /// Memo-table hits (results reused without re-parsing).
    pub memo_hits: u64,
    /// Distinct `(nonterminal, base, len)` entries cached.
    pub memo_entries: usize,
}

/// Hard abort of the whole parse (as opposed to an ordinary `Fail`, which
/// biased choice may recover from).
#[derive(Clone, Copy, Debug)]
enum Abort {
    FuelExhausted,
}

/// `Ok(Some(tree))` = success, `Ok(None)` = Fail, `Err` = abort.
type PResult<T> = std::result::Result<T, Abort>;

/// Per-alternative evaluation context: the environment `E` and the parse
/// trees of already-evaluated sibling terms, indexed by written term
/// position. `parent` links to the invoking alternative for local rules.
struct AltCtx<'p> {
    env: Env,
    results: Vec<Option<Rc<Tree>>>,
    parent: Option<&'p AltCtx<'p>>,
}

impl AltCtx<'_> {
    fn lookup_local(&self, sym: crate::intern::Sym) -> Option<i64> {
        if let Some(v) = self.env.get(sym) {
            return Some(v);
        }
        self.parent.and_then(|p| p.lookup_local(sym))
    }

    /// Most recently written completed occurrence of `nt` in this context
    /// chain (used by `OuterAttr` references inside local rules).
    fn lookup_outer_node(&self, nt: NtId) -> Option<&Rc<Tree>> {
        for res in self.results.iter().rev().flatten() {
            match res.as_ref() {
                Tree::Node(n) if n.nt == nt => return Some(res),
                Tree::Blackbox(b) if b.nt == nt => return Some(res),
                _ => {}
            }
        }
        self.parent.and_then(|p| p.lookup_outer_node(nt))
    }

    fn lookup_outer_array(&self, nt: NtId) -> Option<&ArrayNode> {
        for res in self.results.iter().rev().flatten() {
            if let Tree::Array(a) = res.as_ref() {
                if a.nt == nt {
                    return Some(a);
                }
            }
        }
        self.parent.and_then(|p| p.lookup_outer_array(nt))
    }
}

struct Session<'g, 'i> {
    g: &'g Grammar,
    input: &'i [u8],
    memo: FxHashMap<(NtId, usize, usize), Option<Rc<Tree>>>,
    memoize: bool,
    steps: u64,
    memo_hits: u64,
    max_steps: u64,
    deepest: ParseError,
}

impl Session<'_, '_> {
    fn tick(&mut self) -> PResult<()> {
        self.steps += 1;
        if self.steps > self.max_steps {
            Err(Abort::FuelExhausted)
        } else {
            Ok(())
        }
    }

    fn record_failure(&mut self, offset: usize, nt: NtId, msg: impl FnOnce(&Grammar) -> String) {
        if offset >= self.deepest.offset {
            let g = self.g;
            self.deepest =
                ParseError { offset, nonterminal: Some(g.nt_name(nt).to_owned()), msg: msg(g) };
        }
    }

    /// `s ⊢ A ⇓ R` for the local slice `input[base .. base+len]`.
    fn parse_nt(
        &mut self,
        nt: NtId,
        base: usize,
        len: usize,
        parent: Option<&AltCtx<'_>>,
    ) -> PResult<Option<Rc<Tree>>> {
        self.tick()?;
        let rule = self.g.rule(nt);
        let memo_key = (nt, base, len);
        let memoizable = self.memoize && !rule.is_local;
        if memoizable {
            if let Some(cached) = self.memo.get(&memo_key) {
                self.memo_hits += 1;
                return Ok(cached.clone());
            }
        }

        let result = match &rule.body {
            CRuleBody::Builtin(b) => self.parse_builtin(nt, *b, base, len),
            CRuleBody::Blackbox(idx) => self.parse_blackbox(nt, *idx, base, len)?,
            CRuleBody::Alts(alts) => self.parse_alts(nt, alts, base, len, parent)?,
        };

        if memoizable {
            self.memo.insert(memo_key, result.clone());
        }
        Ok(result)
    }

    fn parse_builtin(
        &mut self,
        nt: NtId,
        b: crate::syntax::Builtin,
        base: usize,
        len: usize,
    ) -> Option<Rc<Tree>> {
        let local = &self.input[base..base + len];
        match run_builtin(b, local) {
            Some((val, consumed)) => {
                let mut env = Env::initial(len);
                env.upd_start_end(0, consumed as i64, consumed > 0);
                env.set(wellknown::VAL, val);
                Some(Rc::new(Tree::Node(Node {
                    nt,
                    name: rc_name(self.g, nt),
                    name_sym: self.g.nt_name_sym(nt),
                    env,
                    children: vec![Rc::new(Tree::Leaf(Leaf { start: base, end: base + consumed }))],
                    base,
                    input_len: len,
                    alt_index: 0,
                })))
            }
            None => {
                self.record_failure(base, nt, |_| format!("builtin `{b}` failed"));
                None
            }
        }
    }

    fn parse_blackbox(
        &mut self,
        nt: NtId,
        idx: usize,
        base: usize,
        len: usize,
    ) -> PResult<Option<Rc<Tree>>> {
        let bb = &self.g.blackboxes()[idx];
        let local = &self.input[base..base + len];
        match (bb.run)(local) {
            Ok(res) => {
                let mut env = Env::initial(len);
                let consumed = res.consumed.min(len);
                env.upd_start_end(0, consumed as i64, consumed > 0);
                for (name, value) in bb.attrs.iter().zip(&res.attr_values) {
                    if let Some(sym) = self.g.attr_sym(name) {
                        env.set(sym, *value);
                    }
                }
                Ok(Some(Rc::new(Tree::Blackbox(BlackboxNode {
                    nt,
                    name: rc_name(self.g, nt),
                    name_sym: self.g.nt_name_sym(nt),
                    env,
                    data: res.data.into(),
                    base,
                    input_len: len,
                }))))
            }
            Err(msg) => {
                self.record_failure(base, nt, |_| format!("blackbox failed: {msg}"));
                Ok(None)
            }
        }
    }

    /// `s, A ⊢ alts ⇓ R` — biased choice.
    fn parse_alts(
        &mut self,
        nt: NtId,
        alts: &[CAlt],
        base: usize,
        len: usize,
        parent: Option<&AltCtx<'_>>,
    ) -> PResult<Option<Rc<Tree>>> {
        for (alt_index, alt) in alts.iter().enumerate() {
            if let Some(tree) = self.parse_alt(nt, alt, alt_index, base, len, parent)? {
                return Ok(Some(tree));
            }
        }
        Ok(None)
    }

    /// One alternative: evaluate terms in (reordered) sequence.
    fn parse_alt(
        &mut self,
        nt: NtId,
        alt: &CAlt,
        alt_index: usize,
        base: usize,
        len: usize,
        parent: Option<&AltCtx<'_>>,
    ) -> PResult<Option<Rc<Tree>>> {
        let mut ctx = AltCtx { env: Env::initial(len), results: vec![None; alt.n_terms], parent };
        for term in &alt.terms {
            self.tick()?;
            let ok = self.eval_term(nt, &term.kind, term.orig_index, base, len, &mut ctx)?;
            if !ok {
                return Ok(None);
            }
        }
        // Children in written order; attribute definitions and predicates
        // leave no child.
        let children: Vec<Rc<Tree>> = ctx.results.into_iter().flatten().collect();
        Ok(Some(Rc::new(Tree::Node(Node {
            nt,
            name: rc_name(self.g, nt),
            name_sym: self.g.nt_name_sym(nt),
            env: ctx.env,
            children,
            base,
            input_len: len,
            alt_index,
        }))))
    }

    /// Evaluates one term; `Ok(true)` = success, `Ok(false)` = Fail.
    fn eval_term(
        &mut self,
        nt: NtId,
        kind: &CTermKind,
        orig_index: usize,
        base: usize,
        len: usize,
        ctx: &mut AltCtx<'_>,
    ) -> PResult<bool> {
        match kind {
            CTermKind::Terminal { bytes, interval } => {
                let Some((l, r)) = self.eval_interval(interval, ctx, len) else {
                    self.record_failure(base, nt, |_| "invalid terminal interval".into());
                    return Ok(false);
                };
                // T-Ter: 0 ≤ l ≤ r ≤ |s|, r − l ≥ |s1|, s[l, l+|s1|] = s1.
                if r - l < bytes.len() as i64 {
                    self.record_failure(base + l as usize, nt, |_| {
                        format!("interval too short for terminal of length {}", bytes.len())
                    });
                    return Ok(false);
                }
                let al = base + l as usize;
                if self.input[al..al + bytes.len()] != bytes[..] {
                    self.record_failure(al, nt, |_| {
                        format!("terminal mismatch (expected {})", preview(bytes))
                    });
                    return Ok(false);
                }
                ctx.env.upd_start_end(l, r, !bytes.is_empty());
                ctx.results[orig_index] =
                    Some(Rc::new(Tree::Leaf(Leaf { start: al, end: al + bytes.len() })));
                Ok(true)
            }
            CTermKind::Symbol { nt: callee, interval } => {
                match self.call_nt_on_interval(nt, *callee, interval, base, len, ctx)? {
                    Some(tree) => {
                        ctx.results[orig_index] = Some(tree);
                        Ok(true)
                    }
                    None => Ok(false),
                }
            }
            CTermKind::AttrDef { attr, expr } => match self.eval(expr, ctx) {
                Some(v) => {
                    ctx.env.set(*attr, v);
                    Ok(true)
                }
                None => {
                    let attr = *attr;
                    self.record_failure(base, nt, |g| {
                        format!("attribute `{}` evaluation failed", g.attr_name(attr))
                    });
                    Ok(false)
                }
            },
            CTermKind::Predicate { expr } => match self.eval(expr, ctx) {
                Some(v) if v != 0 => Ok(true),
                Some(_) => {
                    self.record_failure(base, nt, |_| "predicate failed".into());
                    Ok(false)
                }
                None => {
                    self.record_failure(base, nt, |_| "predicate evaluation failed".into());
                    Ok(false)
                }
            },
            CTermKind::Array { var, from, to, nt: elem_nt, interval } => {
                let (Some(i), Some(j)) = (self.eval(from, ctx), self.eval(to, ctx)) else {
                    self.record_failure(base, nt, |_| "array bounds evaluation failed".into());
                    return Ok(false);
                };
                let mut elems = Vec::new();
                if j > i {
                    elems.reserve((j - i).min(len as i64 + 1) as usize);
                }
                let mut k = i;
                ctx.env.push_scope(*var, k);
                let mut failed = false;
                while k < j {
                    self.tick()?;
                    ctx.env.set_top(*var, k);
                    match self.call_nt_on_interval(nt, *elem_nt, interval, base, len, ctx)? {
                        Some(tree) => elems.push(tree),
                        None => {
                            failed = true;
                            break;
                        }
                    }
                    k += 1;
                }
                ctx.env.pop_scope();
                if failed {
                    return Ok(false);
                }
                ctx.results[orig_index] = Some(Rc::new(Tree::Array(ArrayNode {
                    nt: *elem_nt,
                    name: rc_name(self.g, *elem_nt),
                    name_sym: self.g.nt_name_sym(*elem_nt),
                    elems,
                })));
                Ok(true)
            }
            CTermKind::Star { nt: elem_nt, interval } => {
                let Some((l, r)) = self.eval_interval(interval, ctx, len) else {
                    self.record_failure(base, nt, |_| "invalid star interval".into());
                    return Ok(false);
                };
                // One-or-more repetitions of the element, iteratively: the
                // next repetition starts where the previous one ended.
                // Progress is required; a repetition that touches nothing
                // ends the loop (after it).
                let star_base = base + l as usize;
                let star_len = (r - l) as usize;
                let callee_rule = self.g.rule(*elem_nt);
                let mut elems: Vec<Rc<Tree>> = Vec::new();
                let mut pos: usize = 0;
                loop {
                    self.tick()?;
                    if pos > star_len {
                        break;
                    }
                    let parent: Option<&AltCtx<'_>> =
                        if callee_rule.is_local { Some(ctx) } else { None };
                    let sub = self.parse_nt(*elem_nt, star_base + pos, star_len - pos, parent)?;
                    let Some(sub) = sub else { break };
                    let (_, ce) = tree_start_end(&sub);
                    let adjusted = adjust_tree(&sub, (pos as i64) + l);
                    elems.push(adjusted);
                    if ce == 0 {
                        break; // no progress: stop after this repetition
                    }
                    pos += ce as usize;
                }
                if elems.is_empty() {
                    self.record_failure(star_base, nt, |g| {
                        format!("star needs at least one `{}`", g.nt_name(*elem_nt))
                    });
                    return Ok(false);
                }
                ctx.env.upd_start_end(l, l + pos as i64, pos > 0);
                ctx.results[orig_index] = Some(Rc::new(Tree::Array(ArrayNode {
                    nt: *elem_nt,
                    name: rc_name(self.g, *elem_nt),
                    name_sym: self.g.nt_name_sym(*elem_nt),
                    elems,
                })));
                Ok(true)
            }
            CTermKind::Switch { cases } => {
                let Some(case) = self.select_switch_case(cases, ctx) else {
                    self.record_failure(base, nt, |_| "switch guard evaluation failed".into());
                    return Ok(false);
                };
                let (callee, interval) = case;
                match self.call_nt_on_interval(nt, callee, &interval, base, len, ctx)? {
                    Some(tree) => {
                        ctx.results[orig_index] = Some(tree);
                        Ok(true)
                    }
                    None => Ok(false),
                }
            }
        }
    }

    fn select_switch_case(
        &mut self,
        cases: &[CSwitchCase],
        ctx: &mut AltCtx<'_>,
    ) -> Option<(NtId, CInterval)> {
        for case in cases {
            match &case.cond {
                Some(cond) => match self.eval(cond, ctx) {
                    Some(0) => continue,
                    Some(_) => return Some((case.nt, case.interval.clone())),
                    None => return None,
                },
                None => return Some((case.nt, case.interval.clone())),
            }
        }
        None
    }

    /// T-NTSucc / T-NTFail: evaluate the interval, recurse, adjust
    /// `start`/`end`, and widen the enclosing environment.
    fn call_nt_on_interval(
        &mut self,
        caller: NtId,
        callee: NtId,
        interval: &CInterval,
        base: usize,
        len: usize,
        ctx: &mut AltCtx<'_>,
    ) -> PResult<Option<Rc<Tree>>> {
        let Some((l, r)) = self.eval_interval(interval, ctx, len) else {
            self.record_failure(base, caller, |g| {
                format!("invalid interval for `{}`", g.nt_name(callee))
            });
            return Ok(None);
        };
        let callee_rule = self.g.rule(callee);
        let parent: Option<&AltCtx<'_>> = if callee_rule.is_local { Some(ctx) } else { None };
        let sub = self.parse_nt(callee, base + l as usize, (r - l) as usize, parent)?;
        let Some(sub) = sub else { return Ok(None) };

        // Adjust the callee's start/end from callee-relative to
        // caller-relative offsets, and widen the caller's touched region.
        let adjusted = adjust_tree(&sub, l);
        let (cs, ce) = tree_start_end(&sub);
        ctx.env.upd_start_end(l + cs, l + ce, ce != 0);
        Ok(Some(adjusted))
    }

    /// Evaluates an interval, returning `Some((l, r))` only when
    /// `0 ≤ l ≤ r ≤ len`.
    fn eval_interval(
        &mut self,
        interval: &CInterval,
        ctx: &mut AltCtx<'_>,
        len: usize,
    ) -> Option<(i64, i64)> {
        let l = self.eval(&interval.lo, ctx)?;
        let r = self.eval(&interval.hi, ctx)?;
        if 0 <= l && l <= r && r <= len as i64 {
            Some((l, r))
        } else {
            None
        }
    }

    /// `σ(E, Tr, e)` — expression evaluation; `None` when undefined.
    fn eval(&mut self, e: &CExpr, ctx: &mut AltCtx<'_>) -> Option<i64> {
        match e {
            CExpr::Num(n) => Some(*n),
            CExpr::Eoi => ctx.env.get(wellknown::EOI),
            CExpr::Local(sym) => ctx.lookup_local(*sym),
            CExpr::Bin(op, a, b) => {
                let a = self.eval(a, ctx)?;
                let b = self.eval(b, ctx)?;
                eval_binop(*op, a, b)
            }
            CExpr::Cond(c, t, f) => {
                if self.eval(c, ctx)? != 0 {
                    self.eval(t, ctx)
                } else {
                    self.eval(f, ctx)
                }
            }
            CExpr::NtAttr { term, nt, attr } => {
                let tree = ctx.results[*term].as_ref()?;
                node_attr(tree, *nt, *attr)
            }
            CExpr::OuterAttr { nt, attr } => {
                let tree = ctx.lookup_outer_node(*nt)?;
                node_attr(tree, *nt, *attr)
            }
            CExpr::ElemAttr { term, nt, index, attr } => {
                let k = self.eval(index, ctx)?;
                let tree = ctx.results[*term].as_ref()?;
                let Tree::Array(arr) = tree.as_ref() else { return None };
                if arr.nt != *nt || k < 0 {
                    return None;
                }
                let elem = arr.elems.get(k as usize)?;
                node_attr(elem, *nt, *attr)
            }
            CExpr::OuterElem { nt, index, attr } => {
                let k = self.eval(index, ctx)?;
                if k < 0 {
                    return None;
                }
                let elem = {
                    let arr = ctx.lookup_outer_array(*nt)?;
                    arr.elems.get(k as usize)?.clone()
                };
                node_attr(&elem, *nt, *attr)
            }
            CExpr::Exists { var, term, nt, cond, then, els } => {
                // Only the element *count* is needed up front (the body
                // reaches elements through `ElemAttr`/`OuterElem`), so no
                // clone of the element vector is taken.
                let n = match term {
                    Some(t) => match ctx.results[*t].as_ref()?.as_ref() {
                        Tree::Array(a) if a.nt == *nt => a.elems.len(),
                        _ => return None,
                    },
                    None => ctx.lookup_outer_array(*nt)?.elems.len(),
                };
                let mut found: Option<i64> = None;
                ctx.env.push_scope(*var, 0);
                for k in 0..n {
                    ctx.env.set_top(*var, k as i64);
                    match self.eval(cond, ctx) {
                        Some(0) => continue,
                        Some(_) => {
                            found = Some(k as i64);
                            break;
                        }
                        None => {
                            ctx.env.pop_scope();
                            return None;
                        }
                    }
                }
                match found {
                    Some(k) => {
                        ctx.env.set_top(*var, k);
                        let v = self.eval(then, ctx);
                        ctx.env.pop_scope();
                        v
                    }
                    None => {
                        ctx.env.pop_scope();
                        self.eval(els, ctx)
                    }
                }
            }
        }
    }
}

/// Evaluates a binary operator on concrete values — the single source of
/// truth for IPG integer semantics (wrapping arithmetic, `None` on division
/// by zero or out-of-range shifts). Public so that tools running grammars
/// *backwards* (the `ipg-gen` input generator) compute byte-identical
/// results to both engines.
pub fn eval_binop(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::Mod => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::Eq => (a == b) as i64,
        BinOp::Ne => (a != b) as i64,
        BinOp::Lt => (a < b) as i64,
        BinOp::Gt => (a > b) as i64,
        BinOp::Le => (a <= b) as i64,
        BinOp::Ge => (a >= b) as i64,
        BinOp::And => (a != 0 && b != 0) as i64,
        BinOp::Or => (a != 0 || b != 0) as i64,
        BinOp::Shl => {
            if !(0..64).contains(&b) {
                return None;
            }
            a.wrapping_shl(b as u32)
        }
        BinOp::Shr => {
            if !(0..64).contains(&b) {
                return None;
            }
            a.wrapping_shr(b as u32)
        }
        BinOp::BitAnd => a & b,
        BinOp::BitOr => a | b,
    })
}

/// Reads attribute `attr` from a node-like tree, checking the nonterminal
/// matches (relevant for switch results).
fn node_attr(tree: &Rc<Tree>, nt: NtId, attr: crate::intern::Sym) -> Option<i64> {
    match tree.as_ref() {
        Tree::Node(n) if n.nt == nt => n.env.get(attr),
        Tree::Blackbox(b) if b.nt == nt => b.env.get(attr),
        // On an array (star or `for` term), `B.attr` reads the *last*
        // element's attribute, so `star Item "trail"` sequences naturally
        // via Item.end.
        Tree::Array(a) if a.nt == nt => node_attr(a.elems.last()?, nt, attr),
        _ => None,
    }
}

/// The callee-relative `(start, end)` of a returned tree.
fn tree_start_end(tree: &Rc<Tree>) -> (i64, i64) {
    match tree.as_ref() {
        Tree::Node(n) => (n.env.start(), n.env.end()),
        Tree::Blackbox(b) => (b.env.start(), b.env.end()),
        _ => (0, 0),
    }
}

/// Returns a copy of the callee's tree with `start`/`end` shifted by `l`
/// into caller coordinates (rule T-NTSucc). Children are shared.
fn adjust_tree(tree: &Rc<Tree>, l: i64) -> Rc<Tree> {
    if l == 0 {
        return Rc::clone(tree);
    }
    match tree.as_ref() {
        Tree::Node(n) => {
            let mut node = n.clone();
            node.env.shift_start_end(l);
            Rc::new(Tree::Node(node))
        }
        Tree::Blackbox(b) => {
            let mut bb = b.clone();
            bb.env.shift_start_end(l);
            Rc::new(Tree::Blackbox(bb))
        }
        _ => Rc::clone(tree),
    }
}

fn rc_name(g: &Grammar, nt: NtId) -> std::sync::Arc<str> {
    g.rule(nt).name.clone()
}

pub(crate) fn preview(bytes: &[u8]) -> String {
    crate::syntax::format_bytes(bytes)
}

pub mod vm;

#[cfg(test)]
mod tests;
