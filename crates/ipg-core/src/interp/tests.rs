//! Interpreter tests built directly from the paper's running examples.

use super::*;
use crate::blackbox::{Blackbox, BlackboxResult};
use crate::syntax::{AltBuilder, Builtin, Expr, GrammarBuilder};

fn num(n: i64) -> Expr {
    Expr::num(n)
}
fn eoi() -> Expr {
    Expr::eoi()
}

/// Fig. 1: `S -> A[0,2] B[EOI-2,EOI]` accepts `"aa…bb"`.
fn fig1() -> Grammar {
    GrammarBuilder::new()
        .rule(
            "S",
            vec![AltBuilder::new()
                .symbol("A", num(0), num(2))
                .symbol("B", eoi() - num(2), eoi())
                .build()],
        )
        .rule("A", vec![AltBuilder::new().terminal(b"aa", num(0), num(2)).build()])
        .rule("B", vec![AltBuilder::new().terminal(b"bb", num(0), num(2)).build()])
        .build()
        .unwrap()
}

#[test]
fn fig1_accepts_aa_anything_bb() {
    let g = fig1();
    let p = Parser::new(&g);
    assert!(p.parse(b"aabb").is_ok());
    assert!(p.parse(b"aaXYZbb").is_ok());
    assert!(p.parse(b"aabb junk bb").is_ok());
    assert!(p.parse(b"aab").is_err(), "intervals overlap: EOI-2 < 2 is fine, but b mismatch");
    assert!(p.parse(b"xxbb").is_err());
    assert!(p.parse(b"aaxx").is_err());
}

#[test]
fn fig1_rejects_too_short_input() {
    let g = fig1();
    let p = Parser::new(&g);
    // len 3: A[0,2] ok only if "aa"; B[1,3] needs "bb" at offset 1.
    assert!(p.parse(b"aab").is_err());
    assert!(p.parse(b"a").is_err());
    assert!(p.parse(b"").is_err());
}

/// Fig. 2: random access — header stores offset and length of the data.
fn fig2() -> Grammar {
    GrammarBuilder::new()
        .rule(
            "S",
            vec![AltBuilder::new()
                .symbol("H", num(0), num(8))
                .symbol(
                    "Data",
                    Expr::attr("H", "offset"),
                    Expr::attr("H", "offset") + Expr::attr("H", "length"),
                )
                .build()],
        )
        .rule(
            "H",
            vec![AltBuilder::new()
                .symbol("Int", num(0), num(4))
                .attr("offset", Expr::attr("Int", "val"))
                .symbol("Int", num(4), num(8))
                .attr("length", Expr::attr("Int", "val"))
                .build()],
        )
        .builtin("Int", Builtin::U32Le)
        .builtin("Data", Builtin::Bytes)
        .build()
        .unwrap()
}

#[test]
fn fig2_random_access_follows_header_offsets() {
    let g = fig2();
    let mut input = Vec::new();
    input.extend_from_slice(&10u32.to_le_bytes()); // offset = 10
    input.extend_from_slice(&4u32.to_le_bytes()); // length = 4
    input.extend_from_slice(b"..DATAxx"); // data at 10..14 = "DATA"
    let tree = Parser::new(&g).parse(&input).unwrap();
    let h = tree.child_node_sym(g.nt_sym("H").unwrap()).unwrap();
    assert_eq!(h.attr(&g, "offset"), Some(10));
    assert_eq!(h.attr(&g, "length"), Some(4));
    let data = tree.child_node_sym(g.nt_sym("Data").unwrap()).unwrap();
    assert_eq!(data.span(), (10, 14));
}

#[test]
fn fig2_rejects_out_of_bounds_offset() {
    let g = fig2();
    let mut input = Vec::new();
    input.extend_from_slice(&100u32.to_le_bytes()); // offset beyond input
    input.extend_from_slice(&4u32.to_le_bytes());
    input.extend_from_slice(b"short");
    assert!(Parser::new(&g).parse(&input).is_err());
}

/// Fig. 3: the binary number parser — left recursion bounded by shrinking
/// intervals.
fn fig3() -> Grammar {
    GrammarBuilder::new()
        .start("Int")
        .rule(
            "Int",
            vec![
                AltBuilder::new()
                    .symbol("Int", num(0), eoi() - num(1))
                    .symbol("Digit", eoi() - num(1), eoi())
                    .attr("val", num(2) * Expr::attr("Int", "val") + Expr::attr("Digit", "val"))
                    .build(),
                AltBuilder::new()
                    .symbol("Digit", num(0), num(1))
                    .attr("val", Expr::attr("Digit", "val"))
                    .build(),
            ],
        )
        .rule(
            "Digit",
            vec![
                AltBuilder::new().terminal(b"0", num(0), num(1)).attr("val", num(0)).build(),
                AltBuilder::new().terminal(b"1", num(0), num(1)).attr("val", num(1)).build(),
            ],
        )
        .build()
        .unwrap()
}

#[test]
fn fig3_binary_number_value() {
    let g = fig3();
    let p = Parser::new(&g);
    let val_of = |s: &[u8]| {
        let tree = p.parse(s).unwrap();
        tree.as_node().unwrap().attr(&g, "val").unwrap()
    };
    assert_eq!(val_of(b"0"), 0);
    assert_eq!(val_of(b"1"), 1);
    assert_eq!(val_of(b"101"), 5);
    assert_eq!(val_of(b"1111"), 15);
    assert_eq!(val_of(b"10000000"), 128);
}

#[test]
fn fig3_left_recursion_terminates_on_bad_input() {
    let g = fig3();
    let p = Parser::new(&g);
    assert!(p.parse(b"").is_err());
    assert!(p.parse(b"2").is_err());
    // Prefix behaviour per T-Ter: on "1x" the recursive alternative fails
    // (the last byte is not a digit), but the second alternative
    // `Digit[0,1]` matches the leading "1" — the parse *succeeds* touching
    // only a prefix, exactly as the formal semantics dictates.
    let tree = p.parse(b"1x").unwrap();
    assert_eq!(tree.as_node().unwrap().attr(&g, "val"), Some(1));
}

/// Fig. 4: special attributes — `S -> "1"[0,1] O[1,EOI] "stop"[O.end,EOI]`.
fn fig4() -> Grammar {
    GrammarBuilder::new()
        .rule(
            "S",
            vec![AltBuilder::new()
                .terminal(b"1", num(0), num(1))
                .symbol("O", num(1), eoi())
                .terminal(b"stop", Expr::end_of("O"), eoi())
                .build()],
        )
        .rule(
            "O",
            vec![
                AltBuilder::new().terminal(b"0", num(0), num(1)).symbol("O", num(1), eoi()).build(),
                AltBuilder::new().terminal(b"0", num(0), num(1)).build(),
            ],
        )
        .build()
        .unwrap()
}

#[test]
fn fig4_end_attribute_positions_the_stop_marker() {
    let g = fig4();
    let p = Parser::new(&g);
    assert!(p.parse(b"10stop").is_ok());
    assert!(p.parse(b"1000stop").is_ok());
    assert!(p.parse(b"1stop").is_err(), "O must consume at least one 0");
    assert!(p.parse(b"100stip").is_err());
    let tree = p.parse(b"1000stop").unwrap();
    let o = tree.child_node_sym(g.nt_sym("O").unwrap()).unwrap();
    // O touched offsets 1..4 of S's input.
    assert_eq!(o.touched_start(), 1);
    assert_eq!(o.touched_end(), 4);
}

/// Fig. 6: arrays, element references, and predicates.
fn fig6() -> Grammar {
    GrammarBuilder::new()
        .rule(
            "S",
            vec![AltBuilder::new()
                .symbol("H", num(0), num(4))
                .attr("size", num(4))
                .array(
                    "i",
                    num(0),
                    Expr::attr("H", "num"),
                    "A",
                    num(4) + Expr::local("size") * Expr::local("i"),
                    num(4) + Expr::local("size") * (Expr::local("i") + num(1)),
                )
                .attr("a0", Expr::elem("A", num(0), "val"))
                .pred(Expr::local("a0").gt(num(0)).and(Expr::local("a0").lt(num(10))))
                .build()],
        )
        .rule(
            "H",
            vec![AltBuilder::new()
                .symbol("Int", num(0), num(4))
                .attr("num", Expr::attr("Int", "val"))
                .build()],
        )
        .rule(
            "A",
            vec![AltBuilder::new()
                .symbol("Int", num(0), num(4))
                .attr("val", Expr::attr("Int", "val"))
                .build()],
        )
        .builtin("Int", Builtin::U32Le)
        .build()
        .unwrap()
}

fn fig6_input(values: &[u32]) -> Vec<u8> {
    let mut input = Vec::new();
    input.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for v in values {
        input.extend_from_slice(&v.to_le_bytes());
    }
    input
}

#[test]
fn fig6_array_parses_each_element() {
    let g = fig6();
    let p = Parser::new(&g);
    let tree = p.parse(&fig6_input(&[5, 7, 9])).unwrap();
    let arr = tree.child_array_sym(g.nt_sym("A").unwrap()).unwrap();
    assert_eq!(arr.len(), 3);
    let vals: Vec<i64> = arr.nodes().map(|n| n.attr(&g, "val").unwrap()).collect();
    assert_eq!(vals, vec![5, 7, 9]);
}

#[test]
fn fig6_predicate_rejects_a0_out_of_range() {
    let g = fig6();
    let p = Parser::new(&g);
    assert!(p.parse(&fig6_input(&[5])).is_ok());
    assert!(p.parse(&fig6_input(&[0])).is_err(), "a0 must be > 0");
    assert!(p.parse(&fig6_input(&[10])).is_err(), "a0 must be < 10");
}

#[test]
fn fig6_empty_array_when_count_is_zero() {
    let g = fig6();
    // num = 0 → array imposes no constraint, but a0 = A(0).val fails to
    // evaluate → the alternative fails (σ undefined).
    assert!(Parser::new(&g).parse(&fig6_input(&[])).is_err());
}

/// §3.5: `{aⁿbⁿcⁿ | n > 0}` — not context-free, but an IPG.
fn anbncn() -> Grammar {
    let letter_rule = |name: &str, ch: &[u8]| {
        vec![
            AltBuilder::new().terminal(ch, num(0), num(1)).symbol(name, num(1), eoi()).build(),
            AltBuilder::new().terminal(ch, num(0), num(1)).build(),
        ]
    };
    GrammarBuilder::new()
        .rule(
            "S",
            vec![AltBuilder::new()
                .pred(eoi().rem(num(3)).eq(num(0)))
                .attr("n", eoi() / num(3))
                .symbol("A", num(0), Expr::local("n"))
                .symbol("B", Expr::local("n"), num(2) * Expr::local("n"))
                .symbol("C", num(2) * Expr::local("n"), num(3) * Expr::local("n"))
                .build()],
        )
        .rule("A", letter_rule("A", b"a"))
        .rule("B", letter_rule("B", b"b"))
        .rule("C", letter_rule("C", b"c"))
        .build()
        .unwrap()
}

#[test]
fn anbncn_accepts_the_language() {
    let g = anbncn();
    let p = Parser::new(&g);
    assert!(p.parse(b"abc").is_ok());
    assert!(p.parse(b"aabbcc").is_ok());
    assert!(p.parse(b"aaabbbccc").is_ok());
}

#[test]
fn anbncn_rejects_wrong_shapes() {
    let g = anbncn();
    let p = Parser::new(&g);
    assert!(p.parse(b"").is_err(), "n > 0 required");
    assert!(p.parse(b"ab").is_err(), "length not divisible by 3");
    assert!(p.parse(b"abcc").is_err());
    assert!(p.parse(b"cbaabc").is_err());
    assert!(p.parse(b"bbbccc").is_err());
    // Note: alternatives like "a"[0,1] match a *prefix* of their slice, so
    // inputs such as "abbccc" (where each third starts with the right
    // letter) are accepted — exactly as the formal T-Ter rule dictates.
}

#[test]
fn biased_choice_takes_first_matching_alternative() {
    let g = GrammarBuilder::new()
        .rule(
            "S",
            vec![
                AltBuilder::new().terminal(b"a", num(0), num(1)).attr("which", num(1)).build(),
                AltBuilder::new().terminal(b"a", num(0), num(1)).attr("which", num(2)).build(),
            ],
        )
        .build()
        .unwrap();
    let tree = Parser::new(&g).parse(b"a").unwrap();
    let node = tree.as_node().unwrap();
    assert_eq!(node.attr(&g, "which"), Some(1));
    assert_eq!(node.alt_index, 0);
}

#[test]
fn switch_selects_by_guard_with_default() {
    // A type-length-value toy: tag byte selects the payload parser.
    let g = GrammarBuilder::new()
        .rule(
            "S",
            vec![AltBuilder::new()
                .symbol("Tag", num(0), num(1))
                .switch(
                    vec![
                        (Expr::attr("Tag", "val").eq(num(1)), "Ints", num(1), eoi()),
                        (Expr::attr("Tag", "val").eq(num(2)), "Text", num(1), eoi()),
                    ],
                    ("Raw", num(1), eoi()),
                )
                .build()],
        )
        .builtin("Tag", Builtin::U8)
        .rule("Ints", vec![AltBuilder::new().symbol("Int", num(0), num(4)).build()])
        .builtin("Int", Builtin::U32Le)
        .rule("Text", vec![AltBuilder::new().terminal(b"hi", num(0), num(2)).build()])
        .builtin("Raw", Builtin::Bytes)
        .build()
        .unwrap();
    let p = Parser::new(&g);

    let t1 = p.parse(&[1, 0xaa, 0, 0, 0]).unwrap();
    assert!(t1.child_node_sym(g.nt_sym("Ints").unwrap()).is_some());

    let t2 = p.parse(&[2, b'h', b'i']).unwrap();
    assert!(t2.child_node_sym(g.nt_sym("Text").unwrap()).is_some());
    assert!(p.parse(&[2, b'h', b'o']).is_err(), "selected case must parse");

    let t3 = p.parse(&[9, 1, 2, 3]).unwrap();
    assert!(t3.child_node_sym(g.nt_sym("Raw").unwrap()).is_some(), "default case");
}

#[test]
fn local_rule_sees_invoking_alternative_attributes() {
    // §3.4: S -> A[0,1] D[0,EOI] where D -> B[A.val,EOI] C[B.end,EOI].
    let g = GrammarBuilder::new()
        .rule(
            "S",
            vec![AltBuilder::new().symbol("A", num(0), num(1)).symbol("D", num(0), eoi()).build()],
        )
        .rule(
            "A",
            vec![AltBuilder::new().terminal(b"x", num(0), num(1)).attr("val", num(2)).build()],
        )
        .local_rule(
            "D",
            vec![AltBuilder::new()
                .symbol("B", Expr::attr("A", "val"), eoi())
                .symbol("C", Expr::attr("B", "end"), eoi())
                .build()],
        )
        .rule("B", vec![AltBuilder::new().terminal(b"b", num(0), num(1)).build()])
        .rule("C", vec![AltBuilder::new().terminal(b"c", num(0), num(1)).build()])
        .build()
        .unwrap();
    let p = Parser::new(&g);
    // A.val = 2 → B at offset 2; B.end = 3 → C at offset 3.
    assert!(p.parse(b"x.bc").is_ok());
    assert!(p.parse(b"xb.c").is_err());
}

#[test]
fn backward_parsing_bnum() {
    // §4.3: parse a decimal number that *ends* at EOI, scanning backward.
    let digit_alts = (0..=9u8)
        .map(|d| {
            AltBuilder::new().terminal(&[b'0' + d], num(0), num(1)).attr("v", num(d as i64)).build()
        })
        .collect();
    let g = GrammarBuilder::new()
        .start("BNum")
        .rule(
            "BNum",
            vec![
                AltBuilder::new()
                    .symbol("BNum", num(0), eoi() - num(1))
                    .symbol("Digit", eoi() - num(1), eoi())
                    .attr("v", Expr::attr("BNum", "v") * num(10) + Expr::attr("Digit", "v"))
                    .build(),
                AltBuilder::new()
                    .symbol("Digit", eoi() - num(1), eoi())
                    .attr("v", Expr::attr("Digit", "v"))
                    .build(),
            ],
        )
        .rule("Digit", digit_alts)
        .build()
        .unwrap();
    let p = Parser::new(&g);
    let tree = p.parse(b"1024").unwrap();
    assert_eq!(tree.as_node().unwrap().attr(&g, "v"), Some(1024));
    // The whole point of backward parsing: a non-digit prefix is fine as
    // long as the digits run to the end (the second alternative anchors at
    // EOI-1, not at 0).
    let tree = p.parse(b"xx42").unwrap();
    assert_eq!(tree.as_node().unwrap().attr(&g, "v"), Some(42));
}

#[test]
fn two_pass_parsing_with_existential() {
    // §4.3 (PDF): object lengths live in *other* objects' headers; parse
    // headers first, then re-parse the overlapping object regions.
    let g = GrammarBuilder::new()
        .rule(
            "S",
            vec![AltBuilder::new()
                .symbol("H", num(0), num(8))
                .array(
                    "i",
                    num(0),
                    Expr::attr("H", "num"),
                    "SH",
                    Expr::attr("H", "ofs") + num(8) * Expr::local("i"),
                    Expr::attr("H", "ofs") + num(8) * (Expr::local("i") + num(1)),
                )
                .array(
                    "i",
                    num(0),
                    Expr::attr("H", "num"),
                    "OH",
                    Expr::elem("SH", Expr::local("i"), "ofs"),
                    Expr::elem("SH", Expr::local("i"), "ofs") + num(8),
                )
                .array(
                    "i",
                    num(0),
                    Expr::attr("H", "num"),
                    "Obj",
                    Expr::elem("SH", Expr::local("i"), "ofs"),
                    Expr::elem("SH", Expr::local("i"), "ofs")
                        + Expr::exists(
                            "j",
                            "OH",
                            Expr::elem("OH", Expr::local("j"), "link").eq(Expr::local("i")),
                            Expr::elem("OH", Expr::local("j"), "len"),
                            num(-1),
                        ),
                )
                .build()],
        )
        .rule(
            "H",
            vec![AltBuilder::new()
                .symbol("Int", num(0), num(4))
                .attr("num", Expr::attr("Int", "val"))
                .symbol("Int", num(4), num(8))
                .attr("ofs", Expr::attr("Int", "val"))
                .build()],
        )
        .rule(
            "SH",
            vec![AltBuilder::new()
                .symbol("Int", num(0), num(4))
                .attr("ofs", Expr::attr("Int", "val"))
                .symbol("Int", num(4), num(8))
                .attr("pad", Expr::attr("Int", "val"))
                .build()],
        )
        .rule(
            "OH",
            vec![AltBuilder::new()
                .symbol("Int", num(0), num(4))
                .attr("link", Expr::attr("Int", "val"))
                .symbol("Int", num(4), num(8))
                .attr("len", Expr::attr("Int", "val"))
                .build()],
        )
        .builtin("Int", Builtin::U32Le)
        .builtin("Obj", Builtin::Bytes)
        .build()
        .unwrap();

    // Layout: header (num=2, ofs=8), SH table at 8..24, two objects.
    // Object 0 at offset 24, its header says link=1 (stores *object 1's*
    // length = 10). Object 1 at offset 32, link=0 (stores object 0's
    // length = 9).
    let mut input = Vec::new();
    let push = |v: u32, out: &mut Vec<u8>| out.extend_from_slice(&v.to_le_bytes());
    push(2, &mut input); // H.num
    push(8, &mut input); // H.ofs
    push(24, &mut input); // SH(0).ofs
    push(0, &mut input);
    push(32, &mut input); // SH(1).ofs
    push(0, &mut input);
    push(1, &mut input); // OH(0).link = 1
    push(9, &mut input); // OH(0).len  = 9  (length of object *1*)
    push(0, &mut input); // OH(1).link = 0
    push(8, &mut input); // OH(1).len  = 8  (length of object *0*)
    input.resize(42, 0xee);

    let tree = Parser::new(&g).parse(&input).unwrap();
    let objs = tree.child_array_sym(g.nt_sym("Obj").unwrap()).unwrap();
    assert_eq!(objs.len(), 2);
    // Obj(0): exists j with OH(j).link = 0 → j = 1, len = 8 → span 24..32.
    assert_eq!(objs.node(0).unwrap().span(), (24, 32));
    // Obj(1): j = 0, len = 9 → span 32..41.
    assert_eq!(objs.node(1).unwrap().span(), (32, 41));
}

#[test]
fn blackbox_parser_gets_the_confined_slice() {
    let bb = Blackbox::with_attrs("sum", &["total"], |input| {
        Ok(BlackboxResult {
            consumed: input.len(),
            data: input.to_vec(),
            attr_values: vec![input.iter().map(|&b| b as i64).sum()],
        })
    });
    let g = GrammarBuilder::new()
        .rule(
            "S",
            vec![AltBuilder::new()
                .terminal(b"hdr", num(0), num(3))
                .symbol("Body", num(3), eoi())
                .build()],
        )
        .blackbox_rule("Body", "sum")
        .register_blackbox(bb)
        .build()
        .unwrap();
    let tree = Parser::new(&g).parse(b"hdr\x01\x02\x03").unwrap();
    let body = tree.child_blackbox_sym(g.nt_sym("Body").unwrap()).unwrap();
    assert_eq!(&body.data[..], &[1, 2, 3]);
    assert_eq!(body.env.get(g.attr_sym("total").unwrap()), Some(6));
    assert_eq!(body.base, 3);
}

#[test]
fn blackbox_failure_fails_the_alternative() {
    let bb = Blackbox::new("never", |_| Err("always fails".to_owned()));
    let g = GrammarBuilder::new()
        .rule(
            "S",
            vec![
                AltBuilder::new().symbol("Body", num(0), eoi()).build(),
                AltBuilder::new().terminal(b"ok", num(0), num(2)).build(),
            ],
        )
        .blackbox_rule("Body", "never")
        .register_blackbox(bb)
        .build()
        .unwrap();
    // Biased choice recovers via the second alternative.
    assert!(Parser::new(&g).parse(b"ok").is_ok());
    assert!(Parser::new(&g).parse(b"xx").is_err());
}

#[test]
fn memoization_does_not_change_results() {
    let g = fig3();
    let with = Parser::new(&g).memoize(true);
    let without = Parser::new(&g).memoize(false);
    for input in [&b"1011"[..], b"0", b"111111111111", b"", b"10x1"] {
        let a = with.parse(input);
        let b = without.parse(input);
        assert_eq!(a.is_ok(), b.is_ok(), "input {input:?}");
        if let (Ok(a), Ok(b)) = (a, b) {
            assert_eq!(a, b, "trees differ on {input:?}");
        }
    }
}

#[test]
fn nonterminating_grammar_hits_the_step_limit() {
    // §5's non-terminating example: A -> B[0,EOI] / "s"[0,1];
    //                               B -> A[0,EOI] / "s"[0,1].
    let g = GrammarBuilder::new()
        .rule(
            "A",
            vec![
                AltBuilder::new().symbol("B", num(0), eoi()).build(),
                AltBuilder::new().terminal(b"s", num(0), num(1)).build(),
            ],
        )
        .rule(
            "B",
            vec![
                AltBuilder::new().symbol("A", num(0), eoi()).build(),
                AltBuilder::new().terminal(b"s", num(0), num(1)).build(),
            ],
        )
        .build()
        .unwrap();
    // Memoization OFF: the loop really spins; the fuel bound catches it.
    let p = Parser::new(&g).memoize(false).max_steps(400);
    let err = p.parse(b"x").unwrap_err();
    assert!(err.to_string().contains("step limit"), "got: {err}");
    // With memoization the cycle hits the in-progress/immediately-cached
    // entry and... the left recursion A→B→A on identical (nt, base, len)
    // still recurses before any entry is written, so fuel is needed too.
    let p = Parser::new(&g).max_steps(400);
    assert!(p.parse(b"x").is_err());
}

#[test]
fn empty_interval_zero_zero_is_valid() {
    let g = GrammarBuilder::new()
        .rule(
            "S",
            vec![AltBuilder::new()
                .terminal(b"", num(0), num(0))
                .terminal(b"x", num(0), num(1))
                .build()],
        )
        .build()
        .unwrap();
    assert!(Parser::new(&g).parse(b"x").is_ok());
}

#[test]
fn invalid_interval_fails_cleanly() {
    // [0, EOI+1] is always invalid.
    let g = GrammarBuilder::new()
        .rule("S", vec![AltBuilder::new().symbol("A", num(0), eoi() + num(1)).build()])
        .rule("A", vec![AltBuilder::new().build()])
        .build()
        .unwrap();
    assert!(Parser::new(&g).parse(b"abc").is_err());
}

#[test]
fn deepest_failure_is_reported() {
    let g = fig1();
    let err = Parser::new(&g).parse(b"aaxyzbX").unwrap_err();
    let Error::Parse(pe) = err else { panic!("expected parse error") };
    assert_eq!(pe.offset, 5, "failure at the b-mismatch, not at offset 0");
    assert_eq!(pe.nonterminal.as_deref(), Some("B"));
}

#[test]
fn terminal_prefix_matching_per_t_ter() {
    // T-Ter only requires r - l ≥ |s1| and a prefix match.
    let g = GrammarBuilder::new()
        .rule("S", vec![AltBuilder::new().terminal(b"ab", num(0), eoi()).build()])
        .build()
        .unwrap();
    let p = Parser::new(&g);
    assert!(p.parse(b"ab").is_ok());
    assert!(p.parse(b"abXXX").is_ok(), "terminal matches a prefix of its interval");
    assert!(p.parse(b"a").is_err(), "interval shorter than the literal");
}

#[test]
fn counted_list_via_shadowing_local_rule() {
    // The DNS-style pattern: a recursive local rule parses exactly
    // `H.count` elements by shadowing an inherited counter.
    let g = crate::frontend::parse_grammar(
        r#"
        S -> H[0, 1] {left = H.val} Items[1, EOI] Rest[Items.end, EOI]
          where {
            Items -> {left = left - 1} assert(left >= 0) Item[0, 1] Items[1, EOI]
                   / assert(left = 0) ""[0, 0];
          };
        H := u8;
        Item -> "x"[0, 1];
        Rest := bytes;
        "#,
    )
    .unwrap();
    let p = Parser::new(&g);
    // Count 3: exactly three 'x's are consumed; the rest is Rest.
    let tree = p.parse(b"\x03xxxrest").unwrap();
    let items = tree.child_node_sym(g.nt_sym("Items").unwrap()).unwrap();
    assert_eq!(items.touched_end(), 4, "three items end at offset 4");
    // Too few items: the counter cannot reach zero.
    assert!(p.parse(b"\x03xxyz").is_err());
    // Count 0: no items.
    assert!(p.parse(b"\x00rest").is_ok());
}

#[test]
fn self_referential_attr_in_non_local_rule_is_rejected() {
    let err = crate::frontend::parse_grammar(r#"S -> {x = x + 1} ""[0, 0];"#).unwrap_err();
    assert!(err.to_string().contains("itself"), "got: {err}");
}

#[test]
fn nested_where_rules_chain_environments() {
    // A local rule invoking another local rule: the inner one sees
    // attributes from *both* enclosing alternatives through the context
    // chain.
    let g = crate::frontend::parse_grammar(
        r#"
        S -> Tag[0, 1] {base = Tag.val} Outer[1, EOI]
          where {
            Outer -> {mid = base + 1} Inner[0, EOI]
              where {
                Inner -> Len[0, 1] assert(Len.val = base + mid) Rest[1, EOI];
              };
          };
        Tag := u8;
        Len := u8;
        Rest := bytes;
        "#,
    )
    .unwrap();
    let p = Parser::new(&g);
    // base = 3, mid = 4, Len must equal 7.
    assert!(p.parse(&[3, 7, 0, 0]).is_ok());
    assert!(p.parse(&[3, 8, 0, 0]).is_err());
}

#[test]
fn switch_default_with_invalid_interval_is_the_fail_idiom() {
    // §3.4: "The default branch must fail because of its always-invalid
    // interval" — switch(cond : A / Fail[1, 0]).
    let g = crate::frontend::parse_grammar(
        r#"
        S -> T[0, 1] switch(T.val = 1 : Ok[1, EOI] / Fail[1, 0]);
        T := u8;
        Ok := bytes;
        Fail := bytes;
        "#,
    )
    .unwrap();
    let p = Parser::new(&g);
    assert!(p.parse(&[1, 0xaa]).is_ok());
    assert!(p.parse(&[2, 0xaa]).is_err(), "default [1,0] always fails");
}

#[test]
fn child_start_attribute_is_observable() {
    let g = crate::frontend::parse_grammar(
        r#"
        S -> A[2, 6] {s = A.start} {e = A.end} assert(s = 3) assert(e = 5);
        A -> Pad[0, 1] "xy"[1, 3];
        Pad -> ""[0, 0];
        "#,
    )
    .unwrap();
    // A's slice is [2,6); inside, "xy" touches [1,3) → start/end 3/5 in
    // S's coordinates after the T-NTSucc adjustment.
    let p = Parser::new(&g);
    assert!(p.parse(b"..?xy.").is_ok());
}

#[test]
fn all_builtin_kinds_parse_through_grammars() {
    let g = crate::frontend::parse_grammar(
        r#"
        S -> A[0, 1] B[1, 3] C[3, 7] D[7, 15] E[15, EOI] {n = E.val}
             F[15 + (E.end - 15), EOI];
        A := u8;
        B := u16be;
        C := u32le;
        D := u64be;
        E := ascii_int;
        F := bytes;
        "#,
    )
    .unwrap();
    let mut input = vec![0x01];
    input.extend_from_slice(&0x0203u16.to_be_bytes());
    input.extend_from_slice(&0x0607_0809u32.to_le_bytes());
    input.extend_from_slice(&0x1122_3344_5566_7788u64.to_be_bytes());
    input.extend_from_slice(b"451rest");
    let tree = Parser::new(&g).parse(&input).unwrap();
    let node = tree.as_node().unwrap();
    assert_eq!(node.attr(&g, "n"), Some(451));
    assert_eq!(tree.child_node_sym(g.nt_sym("A").unwrap()).unwrap().attr(&g, "val"), Some(1));
    assert_eq!(tree.child_node_sym(g.nt_sym("B").unwrap()).unwrap().attr(&g, "val"), Some(0x0203));
    assert_eq!(
        tree.child_node_sym(g.nt_sym("C").unwrap()).unwrap().attr(&g, "val"),
        Some(0x0607_0809)
    );
    assert_eq!(
        tree.child_node_sym(g.nt_sym("D").unwrap()).unwrap().attr(&g, "val"),
        Some(0x1122_3344_5566_7788)
    );
}

#[test]
fn parse_stats_reflect_memoization() {
    let g = fig3();
    let p_on = Parser::new(&g).memoize(true);
    let p_off = Parser::new(&g).memoize(false);
    let input = b"10110111";
    let (r1, s1) = p_on.parse_with_stats(input);
    let (r2, s2) = p_off.parse_with_stats(input);
    assert!(r1.is_ok() && r2.is_ok());
    assert!(s1.memo_entries > 0);
    assert_eq!(s2.memo_entries, 0);
    assert_eq!(s2.memo_hits, 0);
    assert!(s1.steps <= s2.steps, "memoization never increases steps");
}

#[test]
fn star_term_parses_one_or_more_iteratively() {
    // The Kleene-star future-work extension (§7): equivalent to the
    // recursive Blocks idiom but without recursion depth.
    let g = crate::frontend::parse_grammar(
        r#"
        S -> star Item x"3b"[Item.end, Item.end + 1];
        Item -> "R" Len {len = Len.val} Data[len];
        Len := u8;
        Data := bytes;
        "#,
    )
    .unwrap();
    let p = Parser::new(&g);
    // Two items: R <len=2> ab, R <len=0>, then the 0x3b trailer.
    let input = b"R\x02abR\x00;";
    let tree = p.parse(input).unwrap();
    let items = tree.child_array_sym(g.nt_sym("Item").unwrap()).unwrap();
    assert_eq!(items.len(), 2);
    assert_eq!(items.node(0).unwrap().attr(&g, "len"), Some(2));
    assert_eq!(items.node(1).unwrap().attr(&g, "len"), Some(0));
    // Zero items: star is one-or-more.
    assert!(p.parse(b";").is_err());
    // Wrong trailer position.
    assert!(p.parse(b"R\x01x.;").is_err());
}

#[test]
fn star_agrees_with_recursive_chunk_idiom() {
    let star = crate::frontend::parse_grammar(
        r#"
        S -> star Item;
        Item -> "x" Len {len = Len.val} Data[len];
        Len := u8;
        Data := bytes;
        "#,
    )
    .unwrap();
    let rec = crate::frontend::parse_grammar(
        r#"
        S -> Items[0, EOI];
        Items -> Item[0, EOI] Items[Item.end, EOI] / Item[0, EOI];
        Item -> "x" Len {len = Len.val} Data[len];
        Len := u8;
        Data := bytes;
        "#,
    )
    .unwrap();
    let ps = Parser::new(&star);
    let pr = Parser::new(&rec);
    for input in [
        &b"x\x00"[..],
        b"x\x01ax\x02bc",
        b"x\x03abcx\x00x\x00",
        b"",
        b"y\x00",
        b"x\x05ab", // truncated payload
    ] {
        assert_eq!(ps.parse(input).is_ok(), pr.parse(input).is_ok(), "disagreement on {input:?}");
    }
    // Element count agreement on a valid input.
    let input = b"x\x01ax\x02bcx\x00";
    let s_items = ps.parse(input).unwrap();
    let s_count = s_items.child_array_sym(star.nt_sym("Item").unwrap()).unwrap().len();
    assert_eq!(s_count, 3);
}

#[test]
fn star_does_not_spin_on_empty_matches() {
    // An element that can succeed consuming nothing must not loop forever.
    let g = crate::frontend::parse_grammar(
        r#"
        S -> star E;
        E -> ""[0, 0];
        "#,
    )
    .unwrap();
    let tree = Parser::new(&g).max_steps(10_000).parse(b"abc").unwrap();
    assert_eq!(
        tree.child_array_sym(g.nt_sym("E").unwrap()).unwrap().len(),
        1,
        "stopped after one empty match"
    );
}

#[test]
fn star_supports_element_references() {
    // star registers an Array occurrence, so A(i).attr works.
    let g = crate::frontend::parse_grammar(
        r#"
        S -> star Item {first = Item(0).len};
        Item -> Len {len = Len.val} Data[len];
        Len := u8;
        Data := bytes;
        "#,
    )
    .unwrap();
    let tree = Parser::new(&g).parse(b"\x02ab\x01c").unwrap();
    assert_eq!(tree.as_node().unwrap().attr(&g, "first"), Some(2));
}

#[test]
fn start_nonterminal_override() {
    let g = fig3();
    let p = Parser::new(&g);
    let tree = p.parse_from_name("Digit", b"1").unwrap();
    assert_eq!(tree.as_node().unwrap().attr(&g, "val"), Some(1));
    assert!(p.parse_from_name("NoSuch", b"1").is_err());
}
