//! The bytecode VM: IPG parsing over a compiled [`Program`] with an
//! explicit work stack and arena-allocated parse trees.
//!
//! This engine implements exactly the parsing semantics of the
//! tree-walking interpreter in [`crate::interp`] (Fig. 8 and Fig. 15 of
//! the paper) — biased choice, `start`/`end` bookkeeping, per-`(A, base,
//! len)` memoization, local-rule environment inheritance — but differs in
//! *how* it runs:
//!
//! * **check → lower → bytecode**: [`crate::bytecode::compile`] flattens
//!   the checked grammar into dense instruction/expression pools once per
//!   grammar, so the parse loop follows `u32` ids instead of chasing
//!   `Rc<Expr>` pointers and never hashes a name.
//! * **Explicit work stack**: nonterminal calls push [`Frame`]s onto a
//!   `Vec` instead of recursing, so deeply nested inputs cannot overflow
//!   the native stack and frame storage (environments, result slots) is
//!   recycled across calls.
//! * **Arena trees**: results go into a [`TreeArena`] — one bump
//!   allocation per node, children as contiguous `u32` ranges, memoized
//!   subtrees shared by id (see [`crate::arena`]).
//!
//! The two engines are kept observably identical — same trees (node for
//! node, attribute for attribute), same deepest-failure errors, same
//! [`ParseStats`] step counts — and the repository's differential tests
//! enforce it. (Memo statistics are engine policy: the VM re-executes
//! builtin leaf rules instead of caching them, which never changes steps,
//! trees, or errors.)
//! The interpreter stays as the executable reference semantics; this VM is
//! the production path (`ipg-formats` parses through it).
//!
//! ```
//! use ipg_core::frontend::parse_grammar;
//! use ipg_core::interp::vm::VmParser;
//!
//! let g = parse_grammar(
//!     r#"
//!     S -> H[0, 8] Data[H.offset, H.offset + H.length];
//!     H -> Int[0, 4] {offset = Int.val} Int[4, 8] {length = Int.val};
//!     Int := u32le;
//!     Data := bytes;
//!     "#,
//! )?;
//! let parser = VmParser::new(&g);
//! let mut input = vec![8u8, 0, 0, 0, 4, 0, 0, 0];
//! input.extend_from_slice(b"DATA");
//! let tree = parser.parse(&input)?;
//! let h = tree.root().child_node_nt(g.nt_id("H").expect("H is a rule")).expect("header parsed");
//! assert_eq!(h.attr(&g, "offset"), Some(8));
//! assert_eq!(h.attr(&g, "length"), Some(4));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use super::{eval_binop, ParseStats};
use crate::analysis::{anchor_requirement, AnchorRequirement};
use crate::arena::{Entry, TreeArena, TreeId, TreeRef};
use crate::builtin::run_builtin;
use crate::bytecode::{compile, BExpr, ExprId, Instr, LitSpan, PRuleKind, Program, SizeHints};
use crate::check::{Grammar, NtId};
use crate::env::{wellknown, Env};
use crate::error::{Error, ParseError, Result};
use crate::intern::Sym;
use crate::profile::{ProfSink, ProfileReport, Profiler};
use crate::syntax::Builtin;
use fxhash::{FxHashMap, FxHashSet};

/// A configured bytecode parser for one grammar. The API mirrors
/// [`crate::interp::Parser`]; results come back as arena-backed
/// [`ParseTree`]s instead of `Rc<Tree>`.
#[derive(Debug)]
pub struct VmParser<'g> {
    grammar: &'g Grammar,
    program: Program,
    /// Pre-sizing hints derived from the program (frame nesting, pool
    /// sizes), computed once at compile time.
    hints: SizeHints,
    /// What a streaming [`Session`] must hold back (see
    /// [`crate::analysis::anchor_requirement`]).
    anchor: AnchorRequirement,
    memoize: bool,
    max_steps: Option<u64>,
}

/// The result of a successful VM parse: the arena plus the root id.
#[derive(Debug)]
pub struct ParseTree {
    arena: TreeArena,
    root: TreeId,
}

impl ParseTree {
    /// A view of the root (always a node for grammars whose start rule has
    /// alternatives).
    pub fn root(&self) -> TreeRef<'_> {
        self.arena.view(self.root)
    }

    /// The arena holding every node of this parse.
    pub fn arena(&self) -> &TreeArena {
        &self.arena
    }

    /// The root's arena id.
    pub fn root_id(&self) -> TreeId {
        self.root
    }
}

impl<'g> VmParser<'g> {
    /// Compiles `grammar` and creates a parser with memoization enabled
    /// and no step limit.
    pub fn new(grammar: &'g Grammar) -> Self {
        let program = compile(grammar);
        let hints = program.size_hints();
        let anchor = anchor_requirement(grammar);
        VmParser { program, hints, anchor, grammar, memoize: true, max_steps: None }
    }

    /// Wraps an already-compiled program — typically one deserialized from
    /// a persisted [`crate::ipgc`] artifact together with its precomputed
    /// anchor classification and size hints — skipping the compile step.
    /// `grammar` must be the grammar the program was compiled from (the
    /// artifact loader verifies this; see
    /// [`crate::ipgc::Artifact::into_parser`]).
    pub fn from_compiled(
        grammar: &'g Grammar,
        program: Program,
        anchor: AnchorRequirement,
        hints: SizeHints,
    ) -> Self {
        VmParser { program, hints, anchor, grammar, memoize: true, max_steps: None }
    }

    /// The compiled program (e.g. for [`Program::disassemble`]).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The grammar's [`AnchorRequirement`]: what a [`Session`] must hold
    /// back before the parse can run to completion.
    pub fn anchor(&self) -> AnchorRequirement {
        self.anchor
    }

    /// Enables or disables memoization (mirror of
    /// [`crate::interp::Parser::memoize`]).
    pub fn memoize(mut self, on: bool) -> Self {
        self.memoize = on;
        self
    }

    /// Limits the number of term evaluations (mirror of
    /// [`crate::interp::Parser::max_steps`]).
    pub fn max_steps(mut self, steps: u64) -> Self {
        self.max_steps = Some(steps);
        self
    }

    /// Parses `input` from the grammar's start nonterminal.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] with the deepest failure observed when the
    /// input does not match — the same error the reference interpreter
    /// reports.
    pub fn parse(&self, input: &[u8]) -> Result<ParseTree> {
        self.parse_from(self.program.start_nt(), input)
    }

    /// Parses `input` from an explicit start nonterminal.
    ///
    /// # Errors
    ///
    /// As [`VmParser::parse`]; additionally [`Error::Grammar`] if `name`
    /// is not a nonterminal of the grammar.
    pub fn parse_from_name(&self, name: &str, input: &[u8]) -> Result<ParseTree> {
        let nt = self
            .grammar
            .nt_id(name)
            .ok_or_else(|| Error::Grammar(format!("unknown nonterminal `{name}`")))?;
        self.parse_from(nt, input)
    }

    /// Parses `input` from nonterminal `nt`.
    ///
    /// # Errors
    ///
    /// As [`VmParser::parse`].
    pub fn parse_from(&self, nt: NtId, input: &[u8]) -> Result<ParseTree> {
        self.run_one_shot(self.fresh_session(input), nt, FuelMsg::Verbose).0
    }

    /// Like [`VmParser::parse`], but also reports [`ParseStats`]. The
    /// `steps` count matches [`crate::interp::Parser::parse_with_stats`]
    /// exactly (both engines tick at the same evaluation points, which is
    /// what makes steps/s comparisons apples-to-apples); the memo fields
    /// reflect each engine's own policy — the VM does not memoize builtin
    /// leaf rules.
    pub fn parse_with_stats(&self, input: &[u8]) -> (Result<ParseTree>, ParseStats) {
        self.run_one_shot(self.fresh_session(input), self.program.start_nt(), FuelMsg::Short)
    }

    /// Opens a streaming [`Session`]: input arrives incrementally via
    /// [`Session::feed`], the parse runs as far as the buffered prefix
    /// allows, and [`Session::finish`] signals end-of-input.
    pub fn streaming(&self) -> Session<'_> {
        Session::new(self)
    }

    /// One-shot parse with a per-call step budget, overriding the
    /// parser's own. This is what lets a service share one compiled
    /// parser across workers (the builder-style [`VmParser::max_steps`]
    /// consumes the parser) while still bounding hostile inputs.
    pub fn parse_bounded(&self, input: &[u8], max_steps: u64) -> (Result<ParseTree>, ParseStats) {
        let mut sess = self.fresh_session(input);
        sess.max_steps = max_steps;
        self.run_one_shot(sess, self.program.start_nt(), FuelMsg::Verbose)
    }

    /// Like [`VmParser::parse`], but runs with the [`crate::profile`]
    /// instrumentation enabled and additionally returns the aggregated
    /// [`ProfileReport`] (per-rule cycle attribution, memo hit/miss,
    /// pc-indexed instruction hits, folded stacks).
    ///
    /// Only this entry point pays the instrumentation cost: the plain
    /// `parse*` family monomorphizes with the no-op sink and is
    /// unaffected.
    pub fn parse_profiled(&self, input: &[u8]) -> (Result<ParseTree>, ParseStats, ProfileReport) {
        let mut prof = Profiler::new(self.program.rule_count(), self.program.instr_count());
        let sess = self.fresh_session_with(input, &mut prof);
        let (result, stats) = self.run_one_shot(sess, self.program.start_nt(), FuelMsg::Verbose);
        let report = ProfileReport::build(self.grammar, &self.program, prof);
        (result, stats, report)
    }

    /// Drives a one-shot session from `nt` and packages result + stats.
    /// `fuel_msg` selects this entry point's fuel-exhaustion wording —
    /// `parse`/`parse_from` diagnose verbosely, `parse_with_stats`
    /// tersely, each mirroring the interpreter's corresponding entry
    /// point (the differential tests compare errors per entry point).
    fn run_one_shot<I: AsRef<[u8]>, PS: ProfSink>(
        &self,
        mut sess: VmSession<'_, I, PS>,
        nt: NtId,
        fuel_msg: FuelMsg,
    ) -> (Result<ParseTree>, ParseStats) {
        let result = match sess.run_root(nt) {
            Ok(Some(root)) => {
                let stats = sess.stats();
                return (Ok(ParseTree { arena: sess.arena, root }), stats);
            }
            Ok(None) => Err(Error::Parse(sess.deepest.clone())),
            Err(Abort::FuelExhausted) => Err(Error::Parse(ParseError {
                offset: sess.deepest.offset,
                nonterminal: sess.deepest.nonterminal.clone(),
                msg: fuel_msg.render(sess.max_steps),
            })),
            Err(Abort::Suspend) => unreachable!("one-shot sessions never suspend"),
        };
        let stats = sess.stats();
        (result, stats)
    }

    fn fresh_session<I: AsRef<[u8]>>(&self, input: I) -> VmSession<'_, I> {
        self.fresh_session_with(input, ())
    }

    fn fresh_session_with<I: AsRef<[u8]>, PS: ProfSink>(
        &self,
        input: I,
        prof: PS,
    ) -> VmSession<'_, I, PS> {
        // Memo mirror of the interpreter's pre-sizing heuristic; arena and
        // frame stack are pre-sized from compile-time program statistics
        // (instruction counts, static call-graph nesting).
        let memo_capacity = if self.memoize { 8 * self.grammar.nt_count() } else { 0 };
        VmSession {
            g: self.grammar,
            p: &self.program,
            input,
            arena: TreeArena::with_hints(self.program.nt_table(), &self.hints),
            memo: FxHashMap::with_capacity_and_hasher(memo_capacity, Default::default()),
            builtin_failures: FxHashSet::default(),
            memoize: self.memoize,
            steps: 0,
            memo_hits: 0,
            max_steps: self.max_steps.unwrap_or(u64::MAX),
            deepest: ParseError { offset: 0, nonterminal: None, msg: "no progress".into() },
            frames: Vec::with_capacity(self.hints.frames),
            depth: 0,
            scratch: Vec::new(),
            complete: true,
            root_open: false,
            suspend: None,
            suspend_count: 0,
            resume: ResumeKind::Exec,
            prof,
        }
    }
}

/// Which fuel-exhaustion wording an entry point reports (see
/// [`VmParser::run_one_shot`]).
#[derive(Clone, Copy)]
enum FuelMsg {
    /// `parse` / `parse_from` / `parse_bounded` / `Session`.
    Verbose,
    /// `parse_with_stats`.
    Short,
}

impl FuelMsg {
    fn render(self, max_steps: u64) -> String {
        match self {
            FuelMsg::Verbose => {
                format!("step limit of {max_steps} exhausted (possible non-terminating grammar)")
            }
            FuelMsg::Short => "step limit exhausted".into(),
        }
    }
}

/// Hard abort of the whole parse (mirror of the interpreter's `Abort`),
/// plus the streaming machine's suspension signal.
#[derive(Clone, Copy, Debug)]
enum Abort {
    FuelExhausted,
    /// A streaming session must wait for more input. The machine state is
    /// left exactly at the blocked operation (any step ticks the retried
    /// operation will re-pay have been rewound); the [`Hint`] is parked in
    /// [`VmSession::suspend`].
    Suspend,
}

type PResult<T> = std::result::Result<T, Abort>;

/// How a suspended machine re-enters execution (see [`Abort::Suspend`]).
#[derive(Clone, Copy, Debug)]
enum ResumeKind {
    /// Re-execute the top frame's current instruction (also covers a
    /// blocked root completion).
    Exec,
    /// Re-enter a `for` iteration whose state was stashed in
    /// [`Pending::Loop`].
    LoopIter,
}

const NO_PARENT: u32 = u32::MAX;

/// What the main loop does next.
enum Flow {
    /// Execute instructions of the top frame.
    Exec,
    /// A call completed; deliver its result to the top frame's pending
    /// term.
    Deliver(Option<TreeId>),
    /// The stack is empty; the parse is finished.
    Done(Option<TreeId>),
}

/// Outcome of [`VmSession::begin_call`].
enum CallOutcome {
    /// The result is already available (memo hit, builtin, or blackbox).
    Done(Option<TreeId>),
    /// A frame was pushed; the result will arrive via [`Flow::Deliver`].
    Pushed,
}

/// In-flight state of a `for` term (the VM analogue of the interpreter's
/// array loop locals).
struct LoopSt {
    slot: u16,
    var: Sym,
    k: i64,
    j: i64,
    nt: NtId,
    lo: ExprId,
    hi: ExprId,
    /// Left endpoint of the *current* iteration's interval.
    l: i64,
    elems: Vec<TreeId>,
}

/// In-flight state of a `star` term.
struct StarSt {
    slot: u16,
    nt: NtId,
    l: i64,
    star_base: usize,
    star_len: usize,
    pos: usize,
    elems: Vec<TreeId>,
}

/// A term whose nonterminal call is waiting for a child frame.
enum Pending {
    None,
    /// A `B[..]` symbol term or a selected switch case.
    Call {
        slot: u16,
        l: i64,
    },
    Loop(LoopSt),
    Star(StarSt),
}

/// One activation of a rule: the VM analogue of the interpreter's
/// `parse_alt` stack frame plus its `AltCtx`.
struct Frame {
    nt: NtId,
    base: usize,
    len: usize,
    /// Index of the rule's first alternative in the program's alt array.
    alts_first: u32,
    /// One past the rule's last alternative.
    alts_end: u32,
    /// The alternative currently being tried.
    alt_cursor: u32,
    /// Next instruction, and one past the current alternative's last.
    ip: u32,
    ip_end: u32,
    env: Env,
    /// Result slots, indexed by written term position.
    results: Vec<Option<TreeId>>,
    /// Frame index of the invoking alternative (local rules only);
    /// [`NO_PARENT`] otherwise.
    parent: u32,
    memoizable: bool,
    pending: Pending,
}

impl Default for Frame {
    fn default() -> Self {
        Frame {
            nt: NtId(0),
            base: 0,
            len: 0,
            alts_first: 0,
            alts_end: 0,
            alt_cursor: 0,
            ip: 0,
            ip_end: 0,
            env: Env::default(),
            results: Vec::new(),
            parent: NO_PARENT,
            memoizable: false,
            pending: Pending::None,
        }
    }
}

struct VmSession<'p, I, PS: ProfSink = ()> {
    g: &'p Grammar,
    p: &'p Program,
    /// The input bytes: a borrowed slice for one-shot parses, an owned
    /// growing buffer for streaming [`Session`]s.
    input: I,
    arena: TreeArena,
    memo: FxHashMap<(NtId, usize, usize), Option<TreeId>>,
    /// Builtin invocations that already recorded their failure. The VM
    /// re-executes builtins instead of memoizing them; this set keeps the
    /// *deepest-failure* bookkeeping identical to the interpreter, where a
    /// repeated failing builtin is a silent memo hit. Touched only on the
    /// (rare) builtin failure path.
    builtin_failures: FxHashSet<(NtId, usize, usize)>,
    memoize: bool,
    steps: u64,
    memo_hits: u64,
    max_steps: u64,
    deepest: ParseError,
    /// The frame stack: `frames[..depth]` are live. Slots above `depth`
    /// are dead but keep their allocations (result vectors, environment
    /// spill) for reuse, so pushing a frame never moves one by value.
    frames: Vec<Frame>,
    depth: usize,
    /// Scratch buffer for collecting a completing frame's children.
    scratch: Vec<TreeId>,
    /// Whether the whole input is present. One-shot parses are always
    /// complete; a streaming session flips this in `finish`. While
    /// `false`, operations that read past the buffered prefix or consult
    /// the total length suspend instead of failing.
    complete: bool,
    /// Whether the root frame's input length is still open (streaming
    /// session over an alternatives rule, before end-of-input). The root
    /// frame then carries `len == 0` and an [`Env::initial_open`]
    /// placeholder environment until sealed.
    root_open: bool,
    /// Parked suspension hint: set by a gated evaluation just before it
    /// returns "undefined", examined by the instruction handlers to
    /// distinguish "wait for input" from a genuine failure.
    suspend: Option<Hint>,
    /// Number of suspensions taken (service telemetry).
    suspend_count: u64,
    /// How to re-enter after [`Abort::Suspend`].
    resume: ResumeKind,
    /// Profiling hooks: `()` (disabled — every call compiles away) for
    /// all plain entry points, `&mut Profiler` under
    /// [`VmParser::parse_profiled`].
    prof: PS,
}

impl<I: AsRef<[u8]>, PS: ProfSink> VmSession<'_, I, PS> {
    fn stats(&self) -> ParseStats {
        ParseStats { steps: self.steps, memo_hits: self.memo_hits, memo_entries: self.memo.len() }
    }

    /// The buffered input bytes.
    #[inline]
    fn bytes(&self) -> &[u8] {
        self.input.as_ref()
    }

    #[inline]
    fn tick(&mut self) -> PResult<()> {
        self.steps += 1;
        if self.steps > self.max_steps {
            Err(Abort::FuelExhausted)
        } else {
            Ok(())
        }
    }

    fn record_failure(&mut self, offset: usize, nt: NtId, msg: impl FnOnce(&Grammar) -> String) {
        if offset >= self.deepest.offset {
            let g = self.g;
            self.deepest =
                ParseError { offset, nonterminal: Some(g.nt_name(nt).to_owned()), msg: msg(g) };
        }
    }

    /// Drives the machine from a root invocation of `nt` to completion.
    fn run_root(&mut self, nt: NtId) -> PResult<Option<TreeId>> {
        let len = self.bytes().len();
        let flow = match self.begin_call(nt, 0, len, NO_PARENT)? {
            CallOutcome::Done(r) => return Ok(r),
            CallOutcome::Pushed => Flow::Exec,
        };
        self.drive(flow)
    }

    /// Runs the machine until it finishes (or aborts/suspends).
    fn drive(&mut self, mut flow: Flow) -> PResult<Option<TreeId>> {
        loop {
            flow = match flow {
                Flow::Exec => self.exec_top()?,
                Flow::Deliver(r) => self.resolve_top(r)?,
                Flow::Done(r) => return Ok(r),
            };
        }
    }

    /// Pushes the root frame of a streaming session over an
    /// open-length input (counterpart of [`VmSession::begin_call`]'s
    /// `Alts` arm; builtin/blackbox/empty roots are handled by the
    /// [`Session`] driver, which defers them to end-of-input). Returns
    /// `false` when the rule has no alternatives (immediate failure,
    /// matching the one-shot machine's behavior after its initial tick).
    fn push_open_root(&mut self, nt: NtId) -> PResult<bool> {
        self.tick()?;
        let p = self.p;
        let PRuleKind::Alts { first, count } = p.rules[nt.0 as usize].kind else {
            unreachable!("open roots are only pushed for alternatives rules")
        };
        if count == 0 {
            return Ok(false);
        }
        let alt = p.alts[first as usize];
        if self.depth == self.frames.len() {
            self.frames.push(Frame::default());
        }
        let f = &mut self.frames[self.depth];
        f.nt = nt;
        f.base = 0;
        f.len = 0; // placeholder until sealed; gated reads suspend instead
        f.alts_first = first;
        f.alts_end = first + count;
        f.alt_cursor = first;
        f.ip = alt.first;
        f.ip_end = alt.first + alt.count;
        f.env = Env::initial_open();
        f.results.clear();
        f.results.resize(alt.n_slots as usize, None);
        f.parent = NO_PARENT;
        f.memoizable = self.memoize && !p.rules[nt.0 as usize].is_local;
        f.pending = Pending::None;
        self.depth += 1;
        self.root_open = true;
        self.prof.enter(nt);
        Ok(true)
    }

    /// Seals the open root frame once the total input length is known:
    /// the placeholder length and environment become real, and every
    /// suspension gate turns off (`complete` flips in the caller).
    fn seal_root(&mut self) {
        if !self.root_open || self.depth == 0 {
            return;
        }
        let len = self.bytes().len();
        let f = &mut self.frames[0];
        f.len = len;
        f.env.seal(len as i64);
    }

    /// `s ⊢ A ⇓ R` at `(base, len)`: memo lookup, then direct evaluation
    /// (builtin/blackbox) or a frame push (rules with alternatives).
    fn begin_call(
        &mut self,
        nt: NtId,
        base: usize,
        len: usize,
        parent: u32,
    ) -> PResult<CallOutcome> {
        self.tick()?;
        self.prof.call(nt);
        let p = self.p;
        let rule = &p.rules[nt.0 as usize];
        // Builtins are never memoized by the VM: re-decoding a fixed-width
        // integer costs less than a memo insert, hits are rare, and the
        // step count is identical either way (a builtin has no internal
        // ticks). The interpreter memoizes them; only the two engines'
        // memo statistics differ, never steps, trees, or errors.
        if let PRuleKind::Builtin(b) = rule.kind {
            let memoizable = self.memoize && !rule.is_local;
            self.prof.enter(nt);
            let r = self.builtin_result(nt, b, base, len, memoizable);
            self.prof.exit(nt, r.is_some());
            return Ok(CallOutcome::Done(r));
        }
        let memoizable = self.memoize && !rule.is_local;
        if memoizable {
            if let Some(cached) = self.memo.get(&(nt, base, len)) {
                let cached = *cached;
                self.memo_hits += 1;
                self.prof.memo(nt, true);
                return Ok(CallOutcome::Done(cached));
            }
            self.prof.memo(nt, false);
        }
        match rule.kind {
            PRuleKind::Builtin(_) => unreachable!("handled above"),
            PRuleKind::Blackbox(idx) => {
                self.prof.enter(nt);
                let r = self.blackbox_result(nt, idx as usize, base, len);
                self.prof.exit(nt, r.is_some());
                if memoizable {
                    self.memo.insert((nt, base, len), r);
                }
                Ok(CallOutcome::Done(r))
            }
            PRuleKind::Alts { first, count } => {
                if count == 0 {
                    self.prof.enter(nt);
                    self.prof.exit(nt, false);
                    if memoizable {
                        self.memo.insert((nt, base, len), None);
                    }
                    return Ok(CallOutcome::Done(None));
                }
                let alt = p.alts[first as usize];
                if self.depth == self.frames.len() {
                    self.frames.push(Frame::default());
                }
                let f = &mut self.frames[self.depth];
                f.nt = nt;
                f.base = base;
                f.len = len;
                f.alts_first = first;
                f.alts_end = first + count;
                f.alt_cursor = first;
                f.ip = alt.first;
                f.ip_end = alt.first + alt.count;
                f.env = Env::initial(len);
                f.results.clear();
                f.results.resize(alt.n_slots as usize, None);
                f.parent = parent;
                f.memoizable = memoizable;
                f.pending = Pending::None;
                self.depth += 1;
                self.prof.enter(nt);
                Ok(CallOutcome::Pushed)
            }
        }
    }

    fn builtin_result(
        &mut self,
        nt: NtId,
        b: Builtin,
        base: usize,
        len: usize,
        memoizable: bool,
    ) -> Option<TreeId> {
        let local = &self.input.as_ref()[base..base + len];
        match run_builtin(b, local) {
            Some((val, consumed)) => {
                let mut env = Env::initial(len);
                env.fast_upd_start_end(0, consumed as i64, consumed > 0);
                // `val` is absent from the fresh environment; append it
                // without the membership scan `set` would do.
                env.push_scope(wellknown::VAL, val);
                let leaf = self.arena.alloc_leaf(base, base + consumed);
                Some(self.arena.alloc_node(nt, env, &[leaf], base, len, 0))
            }
            None => {
                // Where the interpreter's memo would make a repeated
                // failure a silent hit, suppress the duplicate recording
                // so the deepest-failure error stays identical.
                if !memoizable || self.builtin_failures.insert((nt, base, len)) {
                    self.record_failure(base, nt, |_| format!("builtin `{b}` failed"));
                }
                None
            }
        }
    }

    fn blackbox_result(&mut self, nt: NtId, idx: usize, base: usize, len: usize) -> Option<TreeId> {
        let g = self.g;
        let bb = &g.blackboxes()[idx];
        let local = &self.input.as_ref()[base..base + len];
        match (bb.run)(local) {
            Ok(res) => {
                let mut env = Env::initial(len);
                let consumed = res.consumed.min(len);
                env.fast_upd_start_end(0, consumed as i64, consumed > 0);
                for (name, value) in bb.attrs.iter().zip(&res.attr_values) {
                    if let Some(sym) = g.attr_sym(name) {
                        env.set(sym, *value);
                    }
                }
                Some(self.arena.alloc_blackbox(nt, env, res.data.into(), base, len))
            }
            Err(msg) => {
                self.record_failure(base, nt, |_| format!("blackbox failed: {msg}"));
                None
            }
        }
    }

    /// Executes instructions of the top frame until it blocks on a child
    /// call, completes, or fails.
    fn exec_top(&mut self) -> PResult<Flow> {
        loop {
            let fi = self.depth - 1;
            let (ip, ip_end) = {
                let f = &self.frames[fi];
                (f.ip, f.ip_end)
            };
            let flow = if ip == ip_end {
                self.complete_top()?
            } else {
                self.tick()?;
                self.prof.instr(ip);
                match self.p.code[ip as usize] {
                    Instr::Match { lit, lo, hi, slot } => self.exec_match(fi, lit, lo, hi, slot)?,
                    Instr::Call { nt, lo, hi, slot } => self.dispatch_call(fi, nt, lo, hi, slot)?,
                    Instr::Set { attr, expr } => self.exec_set(fi, attr, expr)?,
                    Instr::Guard { expr } => self.exec_guard(fi, expr)?,
                    Instr::Loop { var, from, to, nt, lo, hi, slot } => {
                        self.exec_loop(fi, var, from, to, nt, lo, hi, slot)?
                    }
                    Instr::Star { nt, lo, hi, slot } => self.exec_star(fi, nt, lo, hi, slot)?,
                    Instr::Switch { first, count, slot } => {
                        self.exec_switch(fi, first, count, slot)?
                    }
                }
            };
            match flow {
                // Either the same frame continues (next instruction or
                // next alternative) or a child frame was pushed — both
                // mean "execute the current top frame".
                Flow::Exec => continue,
                other => return Ok(other),
            }
        }
    }

    /// The current alternative failed: try the next one, or fail the rule.
    fn fail_alt(&mut self, fi: usize) -> Flow {
        let p = self.p;
        let open = fi == 0 && self.root_open && !self.complete;
        let f = &mut self.frames[fi];
        f.alt_cursor += 1;
        if f.alt_cursor < f.alts_end {
            let alt = p.alts[f.alt_cursor as usize];
            f.ip = alt.first;
            f.ip_end = alt.first + alt.count;
            f.env = if open { Env::initial_open() } else { Env::initial(f.len) };
            f.results.clear();
            f.results.resize(alt.n_slots as usize, None);
            f.pending = Pending::None;
            Flow::Exec
        } else {
            self.depth -= 1;
            let f = &mut self.frames[self.depth];
            f.pending = Pending::None;
            if f.memoizable {
                let key = (f.nt, f.base, f.len);
                self.memo.insert(key, None);
            }
            let failed = self.frames[self.depth].nt;
            self.prof.exit(failed, false);
            if self.depth == 0 {
                Flow::Done(None)
            } else {
                Flow::Deliver(None)
            }
        }
    }

    /// All terms of the current alternative succeeded: build the node.
    ///
    /// An open root may not complete before end-of-input: its node would
    /// freeze a placeholder `EOI`/`start`, and a longer input could still
    /// arrive. The caller sees this as a suspension (no step to rewind —
    /// completion does not tick).
    fn complete_top(&mut self) -> PResult<Flow> {
        if self.depth == 1 && self.root_open && !self.complete {
            return self.suspended(Hint::UntilEnd, 0, ResumeKind::Exec);
        }
        self.depth -= 1;
        let f = &mut self.frames[self.depth];
        let env = std::mem::take(&mut f.env);
        let (nt, base, len) = (f.nt, f.base, f.len);
        let alt_index = f.alt_cursor - f.alts_first;
        let memoizable = f.memoizable;
        f.pending = Pending::None;
        self.prof.exit(nt, true);
        self.scratch.clear();
        let f = &self.frames[self.depth];
        self.scratch.extend(f.results.iter().flatten().copied());
        let id = self.arena.alloc_node(nt, env, &self.scratch, base, len, alt_index);
        if memoizable {
            self.memo.insert((nt, base, len), Some(id));
        }
        if self.depth == 0 {
            Ok(Flow::Done(Some(id)))
        } else {
            Ok(Flow::Deliver(Some(id)))
        }
    }

    /// Finalizes a suspension: rewinds the `rewind` step ticks the
    /// retried operation will pay again on resume, counts it, and
    /// remembers how to re-enter. The hint must already be parked in
    /// [`VmSession::suspend`] (gated evaluations do that themselves).
    #[cold]
    fn suspend_here(&mut self, rewind: u64, resume: ResumeKind) -> Abort {
        debug_assert!(self.suspend.is_some());
        self.steps -= rewind;
        self.suspend_count += 1;
        if self.depth > 0 {
            let pc = self.frames[self.depth - 1].ip;
            self.prof.suspend(pc);
        }
        self.resume = resume;
        Abort::Suspend
    }

    /// Suspension with an explicit hint (sites that block without going
    /// through a gated evaluation, e.g. a blocked root completion).
    #[cold]
    fn suspended(&mut self, hint: Hint, rewind: u64, resume: ResumeKind) -> PResult<Flow> {
        self.suspend = Some(hint);
        Err(self.suspend_here(rewind, resume))
    }

    /// Instruction-level suspension after a gated evaluation returned
    /// "undefined": the current instruction re-executes on resume, so its
    /// `exec_top` tick is rewound.
    #[cold]
    fn suspend_instr(&mut self) -> PResult<Flow> {
        Err(self.suspend_here(1, ResumeKind::Exec))
    }

    /// A child call finished; resume the pending term of the top frame.
    fn resolve_top(&mut self, ret: Option<TreeId>) -> PResult<Flow> {
        let fi = self.depth - 1;
        match std::mem::replace(&mut self.frames[fi].pending, Pending::None) {
            Pending::Call { slot, l } => self.finish_call(fi, slot, l, ret),
            Pending::Loop(mut st) => match ret {
                Some(sub) => {
                    self.loop_push(fi, &mut st, sub);
                    self.loop_next(fi, st)
                }
                None => {
                    self.frames[fi].env.pop_scope();
                    Ok(self.fail_alt(fi))
                }
            },
            Pending::Star(mut st) => match ret {
                Some(sub) => {
                    if self.star_push(&mut st, sub) {
                        self.star_next(fi, st)
                    } else {
                        Ok(self.finish_star(fi, st))
                    }
                }
                None => Ok(self.finish_star(fi, st)),
            },
            Pending::None => unreachable!("result delivered with no pending term"),
        }
    }

    fn exec_match(
        &mut self,
        fi: usize,
        lit: LitSpan,
        lo: ExprId,
        hi: ExprId,
        slot: u16,
    ) -> PResult<Flow> {
        let (base, nt) = {
            let f = &self.frames[fi];
            (f.base, f.nt)
        };
        let Some((l, r)) = self.eval_interval(lo, hi, fi) else {
            if self.suspend.is_some() {
                return self.suspend_instr();
            }
            self.record_failure(base, nt, |_| "invalid terminal interval".into());
            return Ok(self.fail_alt(fi));
        };
        let blen = lit.len as usize;
        // T-Ter: 0 ≤ l ≤ r ≤ |s|, r − l ≥ |s1|, s[l, l+|s1|] = s1.
        if r - l < blen as i64 {
            self.record_failure(base + l as usize, nt, |_| {
                format!("interval too short for terminal of length {blen}")
            });
            return Ok(self.fail_alt(fi));
        }
        let al = base + l as usize;
        let bytes = &self.p.lits[lit.start as usize..lit.start as usize + blen];
        if self.bytes()[al..al + blen] != *bytes {
            self.record_failure(al, nt, |_| {
                format!("terminal mismatch (expected {})", super::preview(bytes))
            });
            return Ok(self.fail_alt(fi));
        }
        let leaf = self.arena.alloc_leaf(al, al + blen);
        let f = &mut self.frames[fi];
        f.env.fast_upd_start_end(l, r, blen != 0);
        f.results[slot as usize] = Some(leaf);
        f.ip += 1;
        Ok(Flow::Exec)
    }

    fn exec_set(&mut self, fi: usize, attr: Sym, expr: ExprId) -> PResult<Flow> {
        match self.eval(expr, fi) {
            Some(v) => {
                let f = &mut self.frames[fi];
                f.env.set(attr, v);
                f.ip += 1;
                Ok(Flow::Exec)
            }
            None => {
                if self.suspend.is_some() {
                    return self.suspend_instr();
                }
                let (base, nt) = {
                    let f = &self.frames[fi];
                    (f.base, f.nt)
                };
                self.record_failure(base, nt, |g| {
                    format!("attribute `{}` evaluation failed", g.attr_name(attr))
                });
                Ok(self.fail_alt(fi))
            }
        }
    }

    fn exec_guard(&mut self, fi: usize, expr: ExprId) -> PResult<Flow> {
        let (base, nt) = {
            let f = &self.frames[fi];
            (f.base, f.nt)
        };
        match self.eval(expr, fi) {
            Some(v) if v != 0 => {
                self.frames[fi].ip += 1;
                Ok(Flow::Exec)
            }
            Some(_) => {
                self.record_failure(base, nt, |_| "predicate failed".into());
                Ok(self.fail_alt(fi))
            }
            None => {
                if self.suspend.is_some() {
                    return self.suspend_instr();
                }
                self.record_failure(base, nt, |_| "predicate evaluation failed".into());
                Ok(self.fail_alt(fi))
            }
        }
    }

    /// T-NTSucc / T-NTFail for a symbol term or selected switch case:
    /// evaluate the interval and invoke the callee.
    fn dispatch_call(
        &mut self,
        fi: usize,
        callee: NtId,
        lo: ExprId,
        hi: ExprId,
        slot: u16,
    ) -> PResult<Flow> {
        let (base, nt) = {
            let f = &self.frames[fi];
            (f.base, f.nt)
        };
        let Some((l, r)) = self.eval_interval(lo, hi, fi) else {
            if self.suspend.is_some() {
                return self.suspend_instr();
            }
            self.record_failure(base, nt, |g| {
                format!("invalid interval for `{}`", g.nt_name(callee))
            });
            return Ok(self.fail_alt(fi));
        };
        let parent = if self.p.rules[callee.0 as usize].is_local { fi as u32 } else { NO_PARENT };
        match self.begin_call(callee, base + l as usize, (r - l) as usize, parent)? {
            CallOutcome::Pushed => {
                self.frames[fi].pending = Pending::Call { slot, l };
                Ok(Flow::Exec)
            }
            CallOutcome::Done(res) => self.finish_call(fi, slot, l, res),
        }
    }

    /// Caller-side completion of a symbol/switch call: re-base the
    /// callee's `start`/`end` and widen the caller's touched region.
    fn finish_call(&mut self, fi: usize, slot: u16, l: i64, ret: Option<TreeId>) -> PResult<Flow> {
        match ret {
            Some(sub) => {
                let (cs, ce) = self.arena.start_end(sub);
                let adjusted = self.arena.adjust(sub, l);
                let f = &mut self.frames[fi];
                f.env.fast_upd_start_end(l + cs, l + ce, ce != 0);
                f.results[slot as usize] = Some(adjusted);
                f.ip += 1;
                Ok(Flow::Exec)
            }
            None => Ok(self.fail_alt(fi)),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_loop(
        &mut self,
        fi: usize,
        var: Sym,
        from: ExprId,
        to: ExprId,
        nt: NtId,
        lo: ExprId,
        hi: ExprId,
        slot: u16,
    ) -> PResult<Flow> {
        let (base, len, caller) = {
            let f = &self.frames[fi];
            (f.base, f.len, f.nt)
        };
        let (i, j) = match (self.eval(from, fi), self.eval(to, fi)) {
            (Some(i), Some(j)) => (i, j),
            _ => {
                if self.suspend.is_some() {
                    return self.suspend_instr();
                }
                self.record_failure(base, caller, |_| "array bounds evaluation failed".into());
                return Ok(self.fail_alt(fi));
            }
        };
        let mut elems = Vec::new();
        if j > i {
            elems.reserve((j - i).min(len as i64 + 1) as usize);
        }
        self.frames[fi].env.push_scope(var, i);
        self.loop_next(fi, LoopSt { slot, var, k: i, j, nt, lo, hi, l: 0, elems })
    }

    /// One iteration step of a `for` term (entered fresh and after every
    /// delivered element).
    fn loop_next(&mut self, fi: usize, mut st: LoopSt) -> PResult<Flow> {
        loop {
            if st.k >= st.j {
                self.frames[fi].env.pop_scope();
                let id = self.arena.alloc_array(st.nt, &st.elems);
                let f = &mut self.frames[fi];
                f.results[st.slot as usize] = Some(id);
                f.ip += 1;
                return Ok(Flow::Exec);
            }
            self.tick()?;
            self.frames[fi].env.set_top(st.var, st.k);
            let (base, caller) = {
                let f = &self.frames[fi];
                (f.base, f.nt)
            };
            let Some((l, r)) = self.eval_interval(st.lo, st.hi, fi) else {
                if self.suspend.is_some() {
                    // Stash the iteration state; resume re-enters this
                    // loop step (re-paying the iteration tick rewound
                    // here). The pushed loop-variable scope stays.
                    self.frames[fi].pending = Pending::Loop(st);
                    return Err(self.suspend_here(1, ResumeKind::LoopIter));
                }
                self.record_failure(base, caller, |g| {
                    format!("invalid interval for `{}`", g.nt_name(st.nt))
                });
                self.frames[fi].env.pop_scope();
                return Ok(self.fail_alt(fi));
            };
            st.l = l;
            let parent =
                if self.p.rules[st.nt.0 as usize].is_local { fi as u32 } else { NO_PARENT };
            match self.begin_call(st.nt, base + l as usize, (r - l) as usize, parent)? {
                CallOutcome::Pushed => {
                    self.frames[fi].pending = Pending::Loop(st);
                    return Ok(Flow::Exec);
                }
                CallOutcome::Done(Some(sub)) => self.loop_push(fi, &mut st, sub),
                CallOutcome::Done(None) => {
                    self.frames[fi].env.pop_scope();
                    return Ok(self.fail_alt(fi));
                }
            }
        }
    }

    /// Accept one delivered loop element (mirror of the interpreter's
    /// per-iteration `call_nt_on_interval` tail).
    fn loop_push(&mut self, fi: usize, st: &mut LoopSt, sub: TreeId) {
        let (cs, ce) = self.arena.start_end(sub);
        let adjusted = self.arena.adjust(sub, st.l);
        let f = &mut self.frames[fi];
        f.env.fast_upd_start_end(st.l + cs, st.l + ce, ce != 0);
        st.elems.push(adjusted);
        st.k += 1;
    }

    fn exec_star(
        &mut self,
        fi: usize,
        nt: NtId,
        lo: ExprId,
        hi: ExprId,
        slot: u16,
    ) -> PResult<Flow> {
        let (base, caller) = {
            let f = &self.frames[fi];
            (f.base, f.nt)
        };
        let Some((l, r)) = self.eval_interval(lo, hi, fi) else {
            if self.suspend.is_some() {
                return self.suspend_instr();
            }
            self.record_failure(base, caller, |_| "invalid star interval".into());
            return Ok(self.fail_alt(fi));
        };
        let st = StarSt {
            slot,
            nt,
            l,
            star_base: base + l as usize,
            star_len: (r - l) as usize,
            pos: 0,
            elems: Vec::new(),
        };
        self.star_next(fi, st)
    }

    /// One repetition step of a `star` term: the next repetition starts
    /// where the previous one ended.
    fn star_next(&mut self, fi: usize, mut st: StarSt) -> PResult<Flow> {
        loop {
            self.tick()?;
            if st.pos > st.star_len {
                return Ok(self.finish_star(fi, st));
            }
            let parent =
                if self.p.rules[st.nt.0 as usize].is_local { fi as u32 } else { NO_PARENT };
            match self.begin_call(st.nt, st.star_base + st.pos, st.star_len - st.pos, parent)? {
                CallOutcome::Pushed => {
                    self.frames[fi].pending = Pending::Star(st);
                    return Ok(Flow::Exec);
                }
                CallOutcome::Done(Some(sub)) => {
                    if !self.star_push(&mut st, sub) {
                        return Ok(self.finish_star(fi, st));
                    }
                }
                CallOutcome::Done(None) => return Ok(self.finish_star(fi, st)),
            }
        }
    }

    /// Accept one delivered repetition; returns `false` when the
    /// repetition made no progress (which ends the star after it).
    fn star_push(&mut self, st: &mut StarSt, sub: TreeId) -> bool {
        let (_, ce) = self.arena.start_end(sub);
        let adjusted = self.arena.adjust(sub, st.pos as i64 + st.l);
        st.elems.push(adjusted);
        if ce == 0 {
            return false;
        }
        st.pos += ce as usize;
        true
    }

    fn finish_star(&mut self, fi: usize, st: StarSt) -> Flow {
        let caller = self.frames[fi].nt;
        if st.elems.is_empty() {
            self.record_failure(st.star_base, caller, |g| {
                format!("star needs at least one `{}`", g.nt_name(st.nt))
            });
            return self.fail_alt(fi);
        }
        let id = self.arena.alloc_array(st.nt, &st.elems);
        let f = &mut self.frames[fi];
        f.env.fast_upd_start_end(st.l, st.l + st.pos as i64, st.pos > 0);
        f.results[st.slot as usize] = Some(id);
        f.ip += 1;
        Flow::Exec
    }

    fn exec_switch(&mut self, fi: usize, first: u32, count: u16, slot: u16) -> PResult<Flow> {
        let (base, nt) = {
            let f = &self.frames[fi];
            (f.base, f.nt)
        };
        let p = self.p;
        let mut selected = None;
        for case in &p.cases[first as usize..first as usize + count as usize] {
            match case.cond {
                Some(c) => match self.eval(c, fi) {
                    Some(0) => continue,
                    Some(_) => {
                        selected = Some(*case);
                        break;
                    }
                    None => break,
                },
                None => {
                    selected = Some(*case);
                    break;
                }
            }
        }
        match selected {
            Some(case) => self.dispatch_call(fi, case.nt, case.lo, case.hi, slot),
            None => {
                if self.suspend.is_some() {
                    return self.suspend_instr();
                }
                self.record_failure(base, nt, |_| "switch guard evaluation failed".into());
                Ok(self.fail_alt(fi))
            }
        }
    }

    /// Evaluates an interval, valid only when `0 ≤ l ≤ r ≤ len`.
    ///
    /// In the open root frame of a streaming session the total length is
    /// not known yet: `0 ≤ l ≤ r` is still decidable, but `r ≤ len` is
    /// not. An `r` within the buffered prefix is guaranteed valid (the
    /// final length can only be larger); an `r` beyond it parks a
    /// byte-count hint and reads as "undefined" so the instruction
    /// handler suspends instead of failing.
    fn eval_interval(&mut self, lo: ExprId, hi: ExprId, fi: usize) -> Option<(i64, i64)> {
        let l = self.eval(lo, fi)?;
        let r = self.eval(hi, fi)?;
        if fi == 0 && self.root_open && !self.complete {
            if !(0 <= l && l <= r) {
                return None;
            }
            let avail = self.bytes().len() as i64;
            if r > avail {
                self.suspend = Some(Hint::Bytes((r - avail) as usize));
                return None;
            }
            return Some((l, r));
        }
        let len = self.frames[fi].len;
        if 0 <= l && l <= r && r <= len as i64 {
            Some((l, r))
        } else {
            None
        }
    }

    /// `σ(E, Tr, e)` over the flat expression pool; `None` when undefined.
    /// The leaf cases inline into the interval-evaluation hot path; the
    /// recursive cases live in [`VmSession::eval_complex`].
    #[inline]
    fn eval(&mut self, e: ExprId, fi: usize) -> Option<i64> {
        match self.p.exprs[e.0 as usize] {
            BExpr::Num(n) => Some(n),
            BExpr::Eoi => self.eval_eoi(fi),
            BExpr::Local(sym) => self.lookup_local(fi, sym),
            BExpr::NtAttr { slot, nt, attr } => {
                let id = self.frames[fi].results[slot as usize]?;
                self.arena.node_attr(id, nt, attr)
            }
            other => self.eval_complex(other, fi),
        }
    }

    fn eval_complex(&mut self, e: BExpr, fi: usize) -> Option<i64> {
        match e {
            BExpr::Num(n) => Some(n),
            BExpr::Eoi => self.eval_eoi(fi),
            BExpr::Local(sym) => self.lookup_local(fi, sym),
            BExpr::Bin(op, a, b) => {
                let a = self.eval(a, fi)?;
                let b = self.eval(b, fi)?;
                eval_binop(op, a, b)
            }
            BExpr::Cond(c, t, f) => {
                if self.eval(c, fi)? != 0 {
                    self.eval(t, fi)
                } else {
                    self.eval(f, fi)
                }
            }
            BExpr::NtAttr { slot, nt, attr } => {
                let id = self.frames[fi].results[slot as usize]?;
                self.arena.node_attr(id, nt, attr)
            }
            BExpr::ElemAttr { slot, nt, index, attr } => {
                let k = self.eval(index, fi)?;
                let id = self.frames[fi].results[slot as usize]?;
                let Entry::Array(a) = self.arena.entry(id) else { return None };
                if a.nt != nt || k < 0 {
                    return None;
                }
                let elem = *self.arena.child_ids(a.elems).get(k as usize)?;
                self.arena.node_attr(elem, nt, attr)
            }
            BExpr::OuterAttr { nt, attr } => {
                let id = self.lookup_outer_node(fi, nt)?;
                self.arena.node_attr(id, nt, attr)
            }
            BExpr::OuterElem { nt, index, attr } => {
                let k = self.eval(index, fi)?;
                if k < 0 {
                    return None;
                }
                let arr = self.lookup_outer_array(fi, nt)?;
                let Entry::Array(a) = self.arena.entry(arr) else { return None };
                let elem = *self.arena.child_ids(a.elems).get(k as usize)?;
                self.arena.node_attr(elem, nt, attr)
            }
            BExpr::Exists { var, slot, nt, cond, then, els } => {
                // Only the element *count* is needed up front, as in the
                // interpreter.
                let n = match slot {
                    Some(sl) => {
                        let id = self.frames[fi].results[sl as usize]?;
                        match self.arena.entry(id) {
                            Entry::Array(a) if a.nt == nt => a.elems.len as usize,
                            _ => return None,
                        }
                    }
                    None => {
                        let id = self.lookup_outer_array(fi, nt)?;
                        match self.arena.entry(id) {
                            Entry::Array(a) => a.elems.len as usize,
                            _ => return None,
                        }
                    }
                };
                let mut found: Option<i64> = None;
                self.frames[fi].env.push_scope(var, 0);
                for k in 0..n {
                    self.frames[fi].env.set_top(var, k as i64);
                    match self.eval(cond, fi) {
                        Some(0) => continue,
                        Some(_) => {
                            found = Some(k as i64);
                            break;
                        }
                        None => {
                            self.frames[fi].env.pop_scope();
                            return None;
                        }
                    }
                }
                match found {
                    Some(k) => {
                        self.frames[fi].env.set_top(var, k);
                        let v = self.eval(then, fi);
                        self.frames[fi].env.pop_scope();
                        v
                    }
                    None => {
                        self.frames[fi].env.pop_scope();
                        self.eval(els, fi)
                    }
                }
            }
        }
    }

    /// `EOI` of the frame's own input. The open root's length is not
    /// known before end-of-input: park an until-end hint and read as
    /// "undefined" so the caller suspends.
    #[inline]
    fn eval_eoi(&mut self, fi: usize) -> Option<i64> {
        if fi == 0 && self.root_open && !self.complete {
            self.suspend = Some(Hint::UntilEnd);
            return None;
        }
        Some(self.frames[fi].env.fast_eoi())
    }

    /// Current environment, falling through to the invoking alternative's
    /// environment for local rules (mirror of `AltCtx::lookup_local`).
    ///
    /// Every frame's environment carries its own `EOI`/`start`, so those
    /// two symbols never fall through to an outer frame — which means the
    /// open-root gate below can only fire for the root's own terms
    /// (`fi == 0`), where the placeholders must not be read before
    /// sealing.
    fn lookup_local(&mut self, fi: usize, sym: Sym) -> Option<i64> {
        if fi == 0
            && self.root_open
            && !self.complete
            && (sym == wellknown::EOI || sym == wellknown::START)
        {
            self.suspend = Some(Hint::UntilEnd);
            return None;
        }
        let mut i = fi as u32;
        loop {
            let f = &self.frames[i as usize];
            if let Some(v) = f.env.get(sym) {
                return Some(v);
            }
            if f.parent == NO_PARENT {
                return None;
            }
            i = f.parent;
        }
    }

    /// Most recently written completed node/blackbox of `nt` in the
    /// context chain (mirror of `AltCtx::lookup_outer_node`).
    fn lookup_outer_node(&self, fi: usize, nt: NtId) -> Option<TreeId> {
        let mut i = fi as u32;
        loop {
            let f = &self.frames[i as usize];
            for id in f.results.iter().rev().flatten() {
                match self.arena.entry(*id) {
                    Entry::Node(n) if n.nt == nt => return Some(*id),
                    Entry::Blackbox(b) if b.nt == nt => return Some(*id),
                    _ => {}
                }
            }
            if f.parent == NO_PARENT {
                return None;
            }
            i = f.parent;
        }
    }

    /// Mirror of `AltCtx::lookup_outer_array`.
    fn lookup_outer_array(&self, fi: usize, nt: NtId) -> Option<TreeId> {
        let mut i = fi as u32;
        loop {
            let f = &self.frames[i as usize];
            for id in f.results.iter().rev().flatten() {
                if let Entry::Array(a) = self.arena.entry(*id) {
                    if a.nt == nt {
                        return Some(*id);
                    }
                }
            }
            if f.parent == NO_PARENT {
                return None;
            }
            i = f.parent;
        }
    }
}

/// What a suspended [`Session`] is waiting for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hint {
    /// At least this many more bytes beyond the current buffer.
    Bytes(usize),
    /// Only end-of-input unlocks progress — the parse is consulting `EOI`
    /// (see [`AnchorRequirement`]); call [`Session::finish`].
    UntilEnd,
}

/// Three-way outcome of [`Session::feed`] / [`Session::finish`].
#[derive(Debug)]
pub enum Outcome {
    /// The parse completed; the tree is handed over exactly once.
    Done(ParseTree),
    /// The parse failed (or the session was misused); terminal.
    Error(Error),
    /// The machine is suspended waiting for more input.
    NeedInput {
        /// What would unlock progress.
        hint: Hint,
    },
}

impl Outcome {
    /// The error, if this outcome is one.
    pub fn err(&self) -> Option<&Error> {
        match self {
            Outcome::Error(e) => Some(e),
            _ => None,
        }
    }
}

/// Where a session is in its lifecycle.
enum Phase {
    /// Machine not started; the next feed starts it.
    Fresh,
    /// Machine suspended in place. `need` is the buffered size at which a
    /// retry can make progress (`None`: only `finish` resumes).
    Suspended { need: Option<usize>, hint: Hint },
    /// The root rule is a builtin/blackbox over the whole input: nothing
    /// can run before end-of-input, so feeds only buffer.
    Deferred,
    /// Result delivered or session poisoned; terminal.
    Closed,
}

/// A streaming-resumable VM parse: input arrives incrementally via
/// [`Session::feed`], the machine runs exactly as far as the buffered
/// prefix determines, and [`Session::finish`] signals end-of-input.
///
/// The contract mirrored by `tests/streaming.rs`: for *any* chunking of
/// the input, the resulting tree, step count, and error are identical to
/// [`VmParser::parse`] over the whole buffer (and therefore to the
/// reference interpreter). The machine suspends in place — frame stack,
/// arena, and memo intact — whenever an instruction would read past the
/// buffered prefix or consult the not-yet-known total length, and resumes
/// from the exact blocked operation.
///
/// How much can run before `finish` is grammar-dependent; see
/// [`VmParser::anchor`] and [`crate::analysis::anchor_requirement`]. An
/// EOI-anchored grammar (e.g. ZIP's end-of-central-directory) suspends
/// with [`Hint::UntilEnd`] almost immediately and does its work at
/// `finish`; a grammar with computed intervals streams record by record.
///
/// ```
/// use ipg_core::frontend::parse_grammar;
/// use ipg_core::interp::vm::{Hint, Outcome, VmParser};
///
/// let g = parse_grammar(
///     r#"
///     S -> Len[0, 2] {n = Len.val} Body[2, 2 + n];
///     Len := u16be;
///     Body := bytes;
///     "#,
/// )?;
/// let parser = VmParser::new(&g);
/// let mut session = parser.streaming();
/// // Feed the header; the machine asks for the body bytes it now knows
/// // it needs.
/// match session.feed(&[0, 4]) {
///     Outcome::NeedInput { hint: Hint::Bytes(n) } => assert_eq!(n, 4),
///     other => panic!("{other:?}"),
/// }
/// session.feed(b"data");
/// let Outcome::Done(tree) = session.finish() else { panic!() };
/// assert_eq!(tree.root().child_node_nt(g.nt_id("Body").unwrap()).unwrap().span(), (2, 6));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Session<'p> {
    vm: VmSession<'p, Vec<u8>>,
    phase: Phase,
    anchor: AnchorRequirement,
    start_nt: NtId,
    /// Whether the machine has a live frame stack to resume.
    started: bool,
    max_bytes: Option<usize>,
    /// Parked terminal error, replayed on any use after close.
    err: Option<Error>,
}

impl<'p> Session<'p> {
    /// Opens a session on `parser` (see also [`VmParser::streaming`]).
    pub fn new(parser: &'p VmParser<'_>) -> Self {
        let mut vm = parser.fresh_session(Vec::new());
        vm.complete = false;
        let start_nt = parser.program.start_nt();
        let phase = match parser.program.rules[start_nt.0 as usize].kind {
            PRuleKind::Alts { .. } => Phase::Fresh,
            // A builtin/blackbox root consumes "its interval" — the whole
            // input — so nothing can run early.
            _ => Phase::Deferred,
        };
        let anchor = parser.anchor;
        Session { vm, phase, anchor, start_nt, started: false, max_bytes: None, err: None }
    }

    /// Caps the total buffered bytes; exceeding the cap poisons the
    /// session with a clean [`Error::Session`].
    pub fn max_bytes(mut self, cap: usize) -> Self {
        self.max_bytes = Some(cap);
        self
    }

    /// Overrides the parser's step fuel for this session only.
    pub fn max_steps(mut self, steps: u64) -> Self {
        self.vm.max_steps = steps;
        self
    }

    /// The grammar's anchor requirement (copied from [`VmParser::anchor`]).
    pub fn anchor(&self) -> AnchorRequirement {
        self.anchor
    }

    /// Bytes buffered so far.
    pub fn buffered(&self) -> usize {
        self.vm.bytes().len()
    }

    /// Number of suspensions taken so far (service telemetry).
    pub fn suspends(&self) -> u64 {
        self.vm.suspend_count
    }

    /// Engine statistics so far (steps are comparable with the one-shot
    /// engines at completion).
    pub fn stats(&self) -> ParseStats {
        self.vm.stats()
    }

    /// Whether the session has delivered its result (or was poisoned).
    pub fn is_closed(&self) -> bool {
        matches!(self.phase, Phase::Closed)
    }

    /// Appends `chunk` and runs the machine as far as the buffered prefix
    /// determines. Never returns [`Outcome::Done`]: even a fully-consumed
    /// input could be extended, so completion is only decided by
    /// [`Session::finish`]. An [`Outcome::Error`] is a *determined*
    /// rejection: every input with this prefix fails identically.
    pub fn feed(&mut self, chunk: &[u8]) -> Outcome {
        if let Phase::Closed = self.phase {
            return Outcome::Error(self.closed_error());
        }
        if let Some(cap) = self.max_bytes {
            if self.vm.bytes().len().saturating_add(chunk.len()) > cap {
                return self.poison(Error::Session(format!(
                    "input exceeds the session byte budget of {cap}"
                )));
            }
        }
        self.vm.input.extend_from_slice(chunk);
        match self.phase {
            Phase::Deferred => Outcome::NeedInput { hint: Hint::UntilEnd },
            Phase::Fresh => self.pump(),
            Phase::Suspended { need, hint } => {
                // Skip the re-attempt while the known byte shortfall is
                // still unmet (the common 1-byte-chunk path), restating
                // the hint against the *current* buffer so partial feeds
                // see the remaining shortfall, not the original one.
                match need {
                    Some(n) if self.vm.bytes().len() >= n => self.pump(),
                    Some(n) => Outcome::NeedInput { hint: Hint::Bytes(n - self.vm.bytes().len()) },
                    None => Outcome::NeedInput { hint },
                }
            }
            Phase::Closed => unreachable!("handled above"),
        }
    }

    /// Signals end-of-input: the total length becomes known, every
    /// suspension gate opens, and the machine runs to completion.
    /// Returns [`Outcome::Done`] or [`Outcome::Error`], never
    /// [`Outcome::NeedInput`].
    pub fn finish(&mut self) -> Outcome {
        if let Phase::Closed = self.phase {
            return Outcome::Error(self.closed_error());
        }
        self.vm.complete = true;
        if self.started {
            self.vm.seal_root();
        }
        self.pump()
    }

    /// Starts or resumes the machine and classifies how it stopped.
    fn pump(&mut self) -> Outcome {
        let step = self.step_machine();
        match step {
            Ok(Some(root)) => {
                let arena =
                    std::mem::replace(&mut self.vm.arena, TreeArena::empty(self.vm.p.nt_table()));
                // `err` stays `None`: the misuse error for feeding a
                // delivered session is built lazily in `closed_error`.
                self.phase = Phase::Closed;
                Outcome::Done(ParseTree { arena, root })
            }
            Ok(None) => {
                let e = Error::Parse(self.vm.deepest.clone());
                self.poison(e)
            }
            Err(Abort::FuelExhausted) => {
                let e = Error::Parse(ParseError {
                    offset: self.vm.deepest.offset,
                    nonterminal: self.vm.deepest.nonterminal.clone(),
                    msg: FuelMsg::Verbose.render(self.vm.max_steps),
                });
                self.poison(e)
            }
            Err(Abort::Suspend) => {
                debug_assert!(!self.vm.complete, "no suspension can fire after end-of-input");
                let hint = self.vm.suspend.take().expect("suspension parks a hint");
                let need = match hint {
                    Hint::Bytes(n) => Some(self.vm.bytes().len() + n),
                    Hint::UntilEnd => None,
                };
                self.phase = Phase::Suspended { need, hint };
                Outcome::NeedInput { hint }
            }
        }
    }

    /// One driver step: start the root or re-enter the suspended
    /// operation, then drive until done/suspended/aborted.
    fn step_machine(&mut self) -> PResult<Option<TreeId>> {
        if !self.started {
            self.started = true;
            if self.vm.complete {
                // Nothing ran before end-of-input: plain one-shot parse
                // over the whole buffer (also the builtin/blackbox-root
                // path).
                return self.vm.run_root(self.start_nt);
            }
            return match self.vm.push_open_root(self.start_nt)? {
                true => self.vm.drive(Flow::Exec),
                false => Ok(None), // zero-alternative root: immediate failure
            };
        }
        let flow = match self.vm.resume {
            ResumeKind::Exec => Flow::Exec,
            ResumeKind::LoopIter => {
                let fi = self.vm.depth - 1;
                match std::mem::replace(&mut self.vm.frames[fi].pending, Pending::None) {
                    Pending::Loop(st) => self.vm.loop_next(fi, st)?,
                    _ => unreachable!("LoopIter resume requires a stashed loop"),
                }
            }
        };
        self.vm.drive(flow)
    }

    fn poison(&mut self, e: Error) -> Outcome {
        self.phase = Phase::Closed;
        self.err = Some(e.clone());
        Outcome::Error(e)
    }

    fn closed_error(&self) -> Error {
        self.err
            .clone()
            .unwrap_or_else(|| Error::Session("session already delivered its result".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::parse_grammar;
    use crate::interp::Parser;

    fn fig2() -> Grammar {
        parse_grammar(
            r#"
            S -> H[0, 8] Data[H.offset, H.offset + H.length];
            H -> Int[0, 4] {offset = Int.val} Int[4, 8] {length = Int.val};
            Int := u32le;
            Data := bytes;
            "#,
        )
        .unwrap()
    }

    #[test]
    fn repeated_builtin_failure_reports_the_interpreter_error() {
        // A failing builtin invoked twice at the same slice: the
        // interpreter's second invocation is a silent memo hit, so the
        // terminal failure of `T` (recorded in between, at the same
        // offset) survives as the deepest error. The VM re-executes the
        // builtin; without failure-dedup it would re-record
        // "builtin u32le failed" and report a different error.
        let g = parse_grammar(
            r#"
            S -> A[0, EOI] / T[0, EOI] / B[0, EOI];
            A -> Int[0, EOI];
            T -> "abc"[0, EOI];
            B -> Int[0, EOI];
            Int := u32le;
            "#,
        )
        .unwrap();
        let input = [0u8, 1]; // two bytes: u32le and "abc" both fail
        let err_i = Parser::new(&g).parse(&input).unwrap_err();
        let err_v = VmParser::new(&g).parse(&input).unwrap_err();
        assert_eq!(err_i, err_v);

        // With memoization off, *both* engines re-record the builtin
        // failure; they must still agree.
        let err_i = Parser::new(&g).memoize(false).parse(&input).unwrap_err();
        let err_v = VmParser::new(&g).memoize(false).parse(&input).unwrap_err();
        assert_eq!(err_i, err_v);
    }

    fn fig2_input() -> Vec<u8> {
        let mut input = vec![8u8, 0, 0, 0, 4, 0, 0, 0];
        input.extend_from_slice(b"DATA");
        input
    }

    #[test]
    fn vm_and_interpreter_build_identical_trees() {
        let g = fig2();
        let input = fig2_input();
        let reference = Parser::new(&g).parse(&input).unwrap();
        let vm_tree = VmParser::new(&g).parse(&input).unwrap();
        assert_eq!(vm_tree.root().to_tree(), reference);
    }

    #[test]
    fn vm_and_interpreter_report_identical_stats_and_errors() {
        let g = fig2();
        let mut input = fig2_input();
        let vm = VmParser::new(&g);

        let (ok_i, stats_i) = Parser::new(&g).parse_with_stats(&input);
        let (ok_v, stats_v) = vm.parse_with_stats(&input);
        assert!(ok_i.is_ok() && ok_v.is_ok());
        // Steps are tick-for-tick identical; memo statistics are engine
        // policy (the VM skips builtin memoization).
        assert_eq!(stats_i.steps, stats_v.steps);

        input.truncate(6); // header cut short
        let err_i = Parser::new(&g).parse(&input).unwrap_err();
        let err_v = vm.parse(&input).unwrap_err();
        assert_eq!(err_i, err_v);
    }

    #[test]
    fn views_mirror_the_node_accessors() {
        let g = fig2();
        let input = fig2_input();
        let tree = VmParser::new(&g).parse(&input).unwrap();
        let root = tree.root();
        let h = root.child_node_nt(g.nt_id("H").unwrap()).unwrap();
        assert_eq!(h.name(), "H");
        assert_eq!(h.attr(&g, "offset"), Some(8));
        assert_eq!(h.attr(&g, "length"), Some(4));
        assert_eq!(h.span(), (0, 8));
        assert!(root.as_node().unwrap().children().all(|c| c.as_array().is_none()));
        let data = root.child_node_nt(g.nt_id("Data").unwrap()).unwrap();
        assert_eq!(data.span(), (8, 12));
        assert_eq!(&input[data.span().0..data.span().1], b"DATA");
    }

    #[test]
    fn memoization_toggle_and_fuel_mirror_the_interpreter() {
        let g = fig2();
        let input = fig2_input();
        let (r, no_memo) = VmParser::new(&g).memoize(false).parse_with_stats(&input);
        r.unwrap();
        assert_eq!(no_memo.memo_entries, 0);
        assert_eq!(no_memo.memo_hits, 0);

        let err = VmParser::new(&g).max_steps(3).parse(&input).unwrap_err();
        let err_i = Parser::new(&g).max_steps(3).parse(&input).unwrap_err();
        assert_eq!(err, err_i);
    }

    #[test]
    fn feed_restates_the_byte_shortfall_against_the_current_buffer() {
        let g = parse_grammar(
            r#"
            S -> Len[0, 2] {n = Len.val} Body[2, 2 + n];
            Len := u16be;
            Body := bytes;
            "#,
        )
        .unwrap();
        let parser = VmParser::new(&g);
        let mut session = parser.streaming();
        // Header says a 100-byte body follows.
        let Outcome::NeedInput { hint: Hint::Bytes(100) } = session.feed(&[0, 100]) else {
            panic!("expected a 100-byte shortfall")
        };
        // A partial feed must shrink the stated shortfall, not replay it.
        let Outcome::NeedInput { hint: Hint::Bytes(n) } = session.feed(&[0u8; 60]) else {
            panic!("expected a byte hint")
        };
        assert_eq!(n, 40);
    }

    #[test]
    fn star_and_arrays_agree_with_interpreter() {
        let g = parse_grammar(
            r#"
            S -> star Item[0, EOI];
            Item -> Len[0, 1] Byte[1, 1 + Len.val];
            Len := u8;
            Byte := bytes;
            "#,
        )
        .unwrap();
        let input = [2u8, 0xaa, 0xbb, 1, 0xcc, 0, 3, 1, 2, 3];
        let reference = Parser::new(&g).parse(&input).unwrap();
        let vm_tree = VmParser::new(&g).parse(&input).unwrap();
        assert_eq!(vm_tree.root().to_tree(), reference);
        let arr = vm_tree.root().child_array_nt(g.nt_id("Item").unwrap()).unwrap();
        assert_eq!(arr.len(), 4);
    }
}
