//! # Interval Parsing Grammars (IPG)
//!
//! A Rust implementation of the grammar formalism from *"Interval Parsing
//! Grammars for File Format Parsing"* (Zhang, Morrisett, Tan — PLDI 2023).
//!
//! An IPG looks like a context-free grammar with attributes, except that
//! every nonterminal and terminal occurrence carries an **interval** — a pair
//! of integer expressions selecting the slice of the current input that the
//! symbol must describe. Because intervals may mention attributes computed
//! from previously parsed data, IPGs express the context-sensitive patterns
//! that pervade binary file formats — random access, type-length-value,
//! backward parsing, and multi-pass parsing — while remaining declarative
//! and statically checkable.
//!
//! ## Crate layout
//!
//! * [`syntax`] — the abstract syntax of IPGs (grammars, rules, alternatives,
//!   terms, expressions) plus [`syntax::GrammarBuilder`] for programmatic
//!   construction.
//! * [`frontend`] — a concrete textual notation for IPGs (`.ipg` files),
//!   including the implicit-interval auto-completion of §3.4 of the paper.
//! * [`check`] — attribute checking: definedness of every attribute
//!   reference and acyclicity of per-alternative dependency graphs, followed
//!   by the topological reordering the parsing semantics assumes.
//! * [`interp`] — the big-step parsing semantics (Fig. 8/15 of the paper) as
//!   a memoizing interpreter producing [`tree::Tree`] parse trees; it is the
//!   executable *reference* semantics.
//! * [`bytecode`] — the production pipeline's next stage: [`bytecode::compile`]
//!   lowers a checked grammar into a flat, `NtId`-indexed program (dense
//!   instruction/expression pools, pre-resolved result slots) with a
//!   disassembler for snapshot-pinned listings.
//! * [`interp::vm`] — the bytecode execution engine: an explicit work stack
//!   instead of recursion, parse trees bump-allocated into an
//!   [`arena::TreeArena`], observably identical to [`interp`] (same trees,
//!   step counts, and errors — enforced by differential tests).
//! * [`arena`] — arena parse trees (`u32` ids, contiguous child ranges) with
//!   zero-copy views mirroring the [`tree`] accessors.
//! * [`ipgc`] — persisted compiled grammars: a versioned, self-describing
//!   `.ipgc` binary artifact (program pools, anchor classification, size
//!   hints, embedded source) plus a content-hash cache directory, so serve
//!   workers and CLI runs load bytecode instead of recompiling.
//! * [`profile`] — grammar-level VM profiling: per-rule cycle
//!   attribution, memo hit/miss counts, pc-indexed instruction hits,
//!   and a folded-stack export keyed by the static call graph. Disabled
//!   parses pay nothing (the hooks monomorphize away).
//! * [`codegen`] — the parser generator: emits a self-contained Rust
//!   recursive-descent parser from a checked grammar.
//! * [`termination`] — the static termination checker of §5: elementary
//!   cycles of the nonterminal dependency graph are refuted with a small
//!   built-in linear-arithmetic solver ([`solver`]) standing in for Z3.
//! * [`combinators`] — the interval parser combinator library from the
//!   paper's appendix, ported from OCaml to Rust.
//! * [`builtin`] — specialized leaf parsers (`btoi` in the paper): binary
//!   integers of fixed width and endianness, ASCII integers, raw bytes.
//! * [`blackbox`] — reuse of opaque legacy parsers (e.g. a DEFLATE
//!   decompressor) on interval-confined slices of the input.
//!
//! ## Quick start
//!
//! ```
//! use ipg_core::frontend::parse_grammar;
//! use ipg_core::interp::Parser;
//!
//! // The random-access pattern from Fig. 2 of the paper: an 8-byte header
//! // stores the offset and length of a data region.
//! let g = parse_grammar(
//!     r#"
//!     S -> H[0, 8] Data[H.offset, H.offset + H.length];
//!     H -> Int[0, 4] {offset = Int.val} Int[4, 8] {length = Int.val};
//!     Int := u32le;
//!     Data := bytes;
//!     "#,
//! )?;
//! let mut input = vec![8u8, 0, 0, 0, 4, 0, 0, 0]; // offset = 8, length = 4
//! input.extend_from_slice(b"DATA");
//! let tree = Parser::new(&g).parse(&input)?;
//! let h = tree.child_node_sym(g.nt_sym("H").expect("H is a rule")).expect("header parsed");
//! assert_eq!(h.attr(&g, "offset"), Some(8));
//! assert_eq!(h.attr(&g, "length"), Some(4));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod analysis;
pub mod arena;
pub mod blackbox;
pub mod builtin;
pub mod bytecode;
pub mod check;
pub mod codegen;
pub mod combinators;
pub mod env;
pub mod error;
pub mod frontend;
pub mod intern;
pub mod interp;
pub mod ipgc;
pub mod profile;
pub mod sha256;
pub mod solver;
pub mod syntax;
pub mod termination;
pub mod tree;

pub use error::{Error, Result};
pub use interp::vm::{ParseTree, VmParser};
pub use syntax::{Grammar, GrammarBuilder};
pub use tree::Tree;
