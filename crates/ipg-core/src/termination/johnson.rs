//! Johnson's algorithm for enumerating all elementary cycles of a directed
//! graph (D. B. Johnson, *Finding All the Elementary Circuits of a Directed
//! Graph*, SIAM J. Comput. 4(1), 1975) — the enumeration step of the
//! paper's termination checker (§5).

use std::collections::HashSet;

/// Enumerates all elementary cycles of the graph given by adjacency lists
/// (`adj[v]` = successors of `v`). Each cycle is returned as the list of
/// its vertices in order, starting from its smallest vertex; self-loops
/// come out as single-vertex cycles.
pub fn elementary_cycles(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut cycles = Vec::new();
    let mut blocked = vec![false; n];
    let mut b_lists: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    let mut stack = Vec::new();

    // Process vertices in increasing order; within each round only
    // consider the subgraph induced by vertices ≥ s.
    for s in 0..n {
        for v in s..n {
            blocked[v] = false;
            b_lists[v].clear();
        }
        circuit(s, s, adj, &mut blocked, &mut b_lists, &mut stack, &mut cycles);
    }
    cycles
}

fn circuit(
    v: usize,
    s: usize,
    adj: &[Vec<usize>],
    blocked: &mut [bool],
    b_lists: &mut [HashSet<usize>],
    stack: &mut Vec<usize>,
    cycles: &mut Vec<Vec<usize>>,
) -> bool {
    let mut found = false;
    stack.push(v);
    blocked[v] = true;
    for &w in &adj[v] {
        if w < s {
            continue; // restricted to the subgraph on vertices ≥ s
        }
        if w == s {
            cycles.push(stack.clone());
            found = true;
        } else if !blocked[w] && circuit(w, s, adj, blocked, b_lists, stack, cycles) {
            found = true;
        }
    }
    if found {
        unblock(v, blocked, b_lists);
    } else {
        for &w in &adj[v] {
            if w >= s {
                b_lists[w].insert(v);
            }
        }
    }
    stack.pop();
    found
}

fn unblock(v: usize, blocked: &mut [bool], b_lists: &mut [HashSet<usize>]) {
    blocked[v] = false;
    let waiting: Vec<usize> = b_lists[v].drain().collect();
    for w in waiting {
        if blocked[w] {
            unblock(w, blocked, b_lists);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut cycles: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
        cycles.sort();
        cycles
    }

    #[test]
    fn empty_and_acyclic_graphs_have_no_cycles() {
        assert!(elementary_cycles(&[]).is_empty());
        assert!(elementary_cycles(&[vec![1], vec![2], vec![]]).is_empty());
    }

    #[test]
    fn self_loop() {
        assert_eq!(elementary_cycles(&[vec![0]]), vec![vec![0]]);
    }

    #[test]
    fn two_cycle() {
        assert_eq!(sorted(elementary_cycles(&[vec![1], vec![0]])), vec![vec![0, 1]]);
    }

    #[test]
    fn two_overlapping_cycles() {
        // 0→1→0 and 0→1→2→0.
        let adj = vec![vec![1], vec![0, 2], vec![0]];
        assert_eq!(sorted(elementary_cycles(&adj)), vec![vec![0, 1], vec![0, 1, 2]]);
    }

    #[test]
    fn complete_graph_k3_has_five_cycles() {
        // K3 with all directed edges: three 2-cycles and two 3-cycles.
        let adj = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        let cycles = elementary_cycles(&adj);
        assert_eq!(cycles.len(), 5);
        let mut two = 0;
        let mut three = 0;
        for c in &cycles {
            match c.len() {
                2 => two += 1,
                3 => three += 1,
                other => panic!("unexpected cycle length {other}"),
            }
        }
        assert_eq!((two, three), (3, 2));
    }

    #[test]
    fn disconnected_components() {
        // 0→1→0 and 2→2.
        let adj = vec![vec![1], vec![0], vec![2]];
        assert_eq!(sorted(elementary_cycles(&adj)), vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn cycles_are_elementary() {
        // Figure-eight through vertex 1: cycles 1→0→1 and 1→2→1, but no
        // cycle may visit 1 twice.
        let adj = vec![vec![1], vec![0, 2], vec![1]];
        let cycles = sorted(elementary_cycles(&adj));
        assert_eq!(cycles, vec![vec![0, 1], vec![1, 2]]);
    }
}
