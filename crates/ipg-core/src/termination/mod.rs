//! Static termination checking (§5 of the paper).
//!
//! The algorithm:
//!
//! 1. build the *nonterminal dependency graph*: an edge `A → B` labeled
//!    `[el, er]` for every occurrence `B[el, er]` in `A`'s rule (including
//!    array elements and switch cases);
//! 2. enumerate all elementary cycles ([`elementary_cycles`]);
//! 3. for each cycle, check with the linear solver whether
//!    `el₀ = 0 ∧ er₀ = EOI ∧ … ∧ elₙ = 0 ∧ erₙ = EOI` is satisfiable —
//!    i.e. whether the cycle could keep re-parsing the *same* full
//!    interval. UNSAT means intervals strictly shrink along the cycle, so
//!    parsing terminates (Theorem 5.1).
//!
//! The `A.end > 0` extension is implemented: when a cycle's interval
//! mentions `B.end` and `B`'s rule provably consumes at least one terminal
//! byte (a syntactic fixpoint computed during checking), the constraint
//! `B.end ≥ 1` is added — this is what lets the GIF `Blocks` recursion
//! pass.
//!
//! Blackbox parsers are assumed to terminate, as in the paper.

mod johnson;

pub use johnson::elementary_cycles;

use crate::check::{CExpr, CInterval, CRuleBody, CTermKind, Grammar, NtId};
use crate::env::wellknown;
use crate::error::{Error, Result};
use crate::solver::{LinExpr, System, Var};
use crate::syntax::BinOp;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// The outcome of termination checking.
#[derive(Clone, Debug)]
pub struct TerminationReport {
    /// Whether every elementary cycle was proved decreasing.
    pub ok: bool,
    /// Per-cycle details.
    pub cycles: Vec<CycleReport>,
    /// Wall-clock time spent (the paper reports < 20 ms per format).
    pub elapsed: Duration,
}

/// One elementary cycle of the nonterminal dependency graph.
#[derive(Clone, Debug)]
pub struct CycleReport {
    /// Nonterminal names along the cycle.
    pub nonterminals: Vec<String>,
    /// Whether the solver refuted every interval labeling of the cycle
    /// (i.e. the cycle provably shrinks its interval).
    pub decreasing: bool,
}

impl TerminationReport {
    /// Number of elementary cycles found.
    pub fn cycle_count(&self) -> usize {
        self.cycles.len()
    }
}

/// Runs the termination checking algorithm of §5.
pub fn check_termination(grammar: &Grammar) -> TerminationReport {
    let start = Instant::now();

    // Step 1: the labeled nonterminal dependency graph.
    let n = grammar.nt_count();
    let mut labels: HashMap<(usize, usize), Vec<&CInterval>> = HashMap::new();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    fn add_edge<'g>(
        labels: &mut HashMap<(usize, usize), Vec<&'g CInterval>>,
        adj: &mut [Vec<usize>],
        from: usize,
        to: NtId,
        interval: &'g CInterval,
    ) {
        let to = to.0 as usize;
        let entry = labels.entry((from, to)).or_default();
        if entry.is_empty() {
            adj[from].push(to);
        }
        entry.push(interval);
    }
    for (from, rule) in grammar.rules().iter().enumerate() {
        let CRuleBody::Alts(alts) = &rule.body else { continue };
        for alt in alts {
            for term in &alt.terms {
                match &term.kind {
                    CTermKind::Symbol { nt, interval } => {
                        add_edge(&mut labels, &mut adj, from, *nt, interval)
                    }
                    CTermKind::Array { nt, interval, .. } | CTermKind::Star { nt, interval } => {
                        add_edge(&mut labels, &mut adj, from, *nt, interval)
                    }
                    CTermKind::Switch { cases } => {
                        for case in cases {
                            add_edge(&mut labels, &mut adj, from, case.nt, &case.interval);
                        }
                    }
                    CTermKind::Terminal { .. }
                    | CTermKind::AttrDef { .. }
                    | CTermKind::Predicate { .. } => {}
                }
            }
        }
    }

    // Step 2: elementary cycles of the node graph.
    let node_cycles = elementary_cycles(&adj);

    // Step 3: refute each labeling of each cycle.
    let mut cycles = Vec::with_capacity(node_cycles.len());
    let mut ok = true;
    for cycle in node_cycles {
        let k = cycle.len();
        let hop_labels: Vec<&Vec<&CInterval>> =
            (0..k).map(|i| &labels[&(cycle[i], cycle[(i + 1) % k])]).collect();
        // Cartesian product over parallel edges; the cycle is decreasing
        // only if *every* labeling is refuted.
        let mut decreasing = true;
        let mut choice = vec![0usize; k];
        'labelings: loop {
            let intervals: Vec<&CInterval> = (0..k).map(|i| hop_labels[i][choice[i]]).collect();
            if !refute_cycle(grammar, &intervals) {
                decreasing = false;
                break;
            }
            // Advance the mixed-radix counter.
            for i in 0..k {
                choice[i] += 1;
                if choice[i] < hop_labels[i].len() {
                    continue 'labelings;
                }
                choice[i] = 0;
            }
            break;
        }
        ok &= decreasing;
        cycles.push(CycleReport {
            nonterminals: cycle
                .iter()
                .map(|&v| grammar.nt_name(NtId(v as u32)).to_owned())
                .collect(),
            decreasing,
        });
    }

    TerminationReport { ok, cycles, elapsed: start.elapsed() }
}

/// Like [`check_termination`], but returns an error when a cycle could not
/// be proved decreasing.
///
/// # Errors
///
/// [`Error::Termination`] naming the offending cycles.
pub fn ensure_terminating(grammar: &Grammar) -> Result<TerminationReport> {
    let report = check_termination(grammar);
    if report.ok {
        Ok(report)
    } else {
        let bad: Vec<String> = report
            .cycles
            .iter()
            .filter(|c| !c.decreasing)
            .map(|c| c.nonterminals.join(" → "))
            .collect();
        Err(Error::Termination(format!("possibly non-terminating cycle(s): {}", bad.join("; "))))
    }
}

/// Returns `true` when the solver proves the cycle cannot keep the full
/// `[0, EOI]` interval (UNSAT ⇒ decreasing ⇒ terminating).
fn refute_cycle(grammar: &Grammar, intervals: &[&CInterval]) -> bool {
    let mut sys = System::new();
    let mut alloc = VarAlloc::new(grammar);
    let eoi = alloc.global_eoi(&mut sys);
    for (edge, interval) in intervals.iter().enumerate() {
        let lo = alloc.linearize(&interval.lo, edge, &mut sys);
        let hi = alloc.linearize(&interval.hi, edge, &mut sys);
        sys.assert_eq(lo, LinExpr::constant(0));
        sys.assert_eq(hi, LinExpr::var(eoi));
    }
    !sys.is_satisfiable()
}

/// Allocates solver variables for expression atoms. Atoms are keyed per
/// edge (each cycle position is a distinct rule instantiation) except for
/// `EOI`, which the paper's formula shares across the whole cycle (a
/// non-decreasing cycle keeps the same input).
struct VarAlloc<'g> {
    grammar: &'g Grammar,
    map: HashMap<String, Var>,
    next: u32,
}

impl<'g> VarAlloc<'g> {
    fn new(grammar: &'g Grammar) -> Self {
        VarAlloc { grammar, map: HashMap::new(), next: 0 }
    }

    fn global_eoi(&mut self, sys: &mut System) -> Var {
        self.named("EOI".to_owned(), Some(0), sys)
    }

    fn fresh(&mut self) -> Var {
        let v = Var(self.next);
        self.next += 1;
        v
    }

    /// Returns the variable for `key`, creating it with an optional lower
    /// bound on first use.
    fn named(&mut self, key: String, lower_bound: Option<i64>, sys: &mut System) -> Var {
        if let Some(&v) = self.map.get(&key) {
            return v;
        }
        let v = self.fresh();
        self.map.insert(key, v);
        if let Some(lb) = lower_bound {
            sys.assert_ge(LinExpr::var(v), LinExpr::constant(lb));
        }
        v
    }

    /// Normalizes `e` (evaluated in cycle position `edge`) to a linear
    /// form. Non-linear or data-dependent subterms become shared free
    /// variables — conservative in the sound direction.
    fn linearize(&mut self, e: &CExpr, edge: usize, sys: &mut System) -> LinExpr {
        match e {
            CExpr::Num(n) => LinExpr::constant(*n),
            CExpr::Eoi => LinExpr::var(self.global_eoi(sys)),
            CExpr::Bin(BinOp::Add, a, b) => {
                self.linearize(a, edge, sys).add(&self.linearize(b, edge, sys))
            }
            CExpr::Bin(BinOp::Sub, a, b) => {
                self.linearize(a, edge, sys).sub(&self.linearize(b, edge, sys))
            }
            CExpr::Bin(BinOp::Mul, a, b) => {
                let la = self.linearize(a, edge, sys);
                let lb = self.linearize(b, edge, sys);
                if la.is_constant() {
                    lb.scale(la.constant_term())
                } else if lb.is_constant() {
                    la.scale(lb.constant_term())
                } else {
                    LinExpr::var(self.atom(e, edge, sys))
                }
            }
            _ => LinExpr::var(self.atom(e, edge, sys)),
        }
    }

    /// A shared variable for a non-linear/atomic subexpression, with sound
    /// bounds where we have them.
    fn atom(&mut self, e: &CExpr, edge: usize, sys: &mut System) -> Var {
        let lower = match e {
            // start/end special attributes are offsets: always ≥ 0. The
            // §5 extension: B.end ≥ 1 when B always consumes a byte.
            CExpr::NtAttr { nt, attr, .. } | CExpr::OuterAttr { nt, attr } => {
                if *attr == wellknown::END {
                    if self.grammar.rule(*nt).consumes_terminal {
                        Some(1)
                    } else {
                        Some(0)
                    }
                } else if *attr == wellknown::START {
                    Some(0)
                } else {
                    None
                }
            }
            _ => None,
        };
        let key = format!("e{edge}:{e:?}");
        self.named(key, lower, sys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::parse_grammar;

    #[test]
    fn acyclic_grammar_trivially_terminates() {
        let g =
            parse_grammar("S -> H[0, 8] D[8, EOI]; H -> \"h\"[0, 1]; D -> \"d\"[0, 1];").unwrap();
        let report = check_termination(&g);
        assert!(report.ok);
        assert_eq!(report.cycle_count(), 0);
    }

    #[test]
    fn fig3_binary_number_terminates() {
        let g = parse_grammar(
            r#"
            start Int;
            Int -> Int[0, EOI - 1] Digit[EOI - 1, EOI] {val = 2 * Int.val + Digit.val}
                 / Digit[0, 1] {val = Digit.val};
            Digit -> "0"[0, 1] {val = 0} / "1"[0, 1] {val = 1};
            "#,
        )
        .unwrap();
        let report = check_termination(&g);
        assert!(report.ok, "report: {report:?}");
        assert_eq!(report.cycle_count(), 1, "the Int self-loop");
    }

    #[test]
    fn section5_example_is_flagged() {
        // A → B[0, EOI] / "s"[0,1]; B → A[0, EOI] / "s"[0,1].
        let g =
            parse_grammar(r#"A -> B[0, EOI] / "s"[0, 1]; B -> A[0, EOI] / "s"[0, 1];"#).unwrap();
        let report = check_termination(&g);
        assert!(!report.ok);
        assert_eq!(report.cycle_count(), 1);
        assert!(!report.cycles[0].decreasing);
        assert!(ensure_terminating(&g).is_err());
    }

    #[test]
    fn kaitai_repeat_epsilon_equivalent_is_flagged() {
        // Fig. 11d: S → ""[0,0] S[0, EOI].
        let g = parse_grammar(r#"S -> ""[0, 0] S[0, EOI] / ""[0, 0];"#).unwrap();
        let report = check_termination(&g);
        assert!(!report.ok, "the [0, EOI] self-loop never shrinks");
    }

    #[test]
    fn kaitai_seek_equivalent_is_flagged() {
        // Fig. 11b: S → num[0,1] S[num.val, EOI]; num.val can be 0.
        let g = parse_grammar(r#"S -> Num[0, 1] S[Num.val, EOI] / ""[0, 0]; Num := u8;"#).unwrap();
        let report = check_termination(&g);
        assert!(!report.ok, "num.val = 0 keeps the interval at [0, EOI]");
    }

    #[test]
    fn gif_blocks_pass_with_the_end_extension() {
        // Blocks → Block Blocks[Block.end, EOI] / Block, where Block
        // consumes at least one terminal byte.
        let g = parse_grammar(
            r#"
            start Blocks;
            Blocks -> Block[0, EOI] Blocks[Block.end, EOI] / Block[0, EOI];
            Block -> "B"[0, 1] Len[1, 2] where { Len := u8; };
            "#,
        )
        .unwrap();
        let report = check_termination(&g);
        assert!(report.ok, "Block.end ≥ 1 refutes the Blocks self-loop: {report:?}");
    }

    #[test]
    fn blocks_without_consuming_block_are_flagged() {
        // Same shape, but Block can succeed consuming nothing.
        let g = parse_grammar(
            r#"
            start Blocks;
            Blocks -> Block[0, EOI] Blocks[Block.end, EOI] / Block[0, EOI];
            Block -> ""[0, 0];
            "#,
        )
        .unwrap();
        let report = check_termination(&g);
        assert!(!report.ok, "Block.end can be 0, so Blocks may not shrink");
    }

    #[test]
    fn anbncn_terminates() {
        let g = parse_grammar(
            r#"
            S -> assert(EOI % 3 = 0) {n = EOI / 3} A[0, n] B[n, 2*n] C[2*n, 3*n];
            A -> "a"[0, 1] A[1, EOI] / "a"[0, 1];
            B -> "b"[0, 1] B[1, EOI] / "b"[0, 1];
            C -> "c"[0, 1] C[1, EOI] / "c"[0, 1];
            "#,
        )
        .unwrap();
        let report = check_termination(&g);
        assert!(report.ok, "report: {report:?}");
        assert_eq!(report.cycle_count(), 3, "three self-loops with [1, EOI]");
    }

    #[test]
    fn parallel_edges_all_checked() {
        // Two edges S→S: a shrinking one and a non-shrinking one. The
        // non-shrinking labeling must be found.
        let g = parse_grammar(r#"S -> S[1, EOI] / S[0, EOI] / "x"[0, 1];"#).unwrap();
        let report = check_termination(&g);
        assert!(!report.ok);
    }

    #[test]
    fn mutual_recursion_through_three_rules() {
        // A → B[1, EOI], B → C[0, EOI], C → A[0, EOI]: the cycle strictly
        // shrinks at the A→B hop.
        let g = parse_grammar(
            r#"
            A -> B[1, EOI] / "x"[0, 1];
            B -> C[0, EOI] / "x"[0, 1];
            C -> A[0, EOI] / "x"[0, 1];
            "#,
        )
        .unwrap();
        let report = check_termination(&g);
        assert!(report.ok, "report: {report:?}");
        assert_eq!(report.cycle_count(), 1);
    }

    #[test]
    fn report_timing_is_recorded() {
        let g = parse_grammar(r#"S -> "x"[0, 1];"#).unwrap();
        let report = check_termination(&g);
        assert!(report.elapsed < Duration::from_secs(1));
    }
}
