//! Lowering a checked grammar to a flat bytecode program.
//!
//! The checked IR ([`crate::check`]) is a tree of `Box`ed expressions and
//! `Vec`s of terms — fine for checking, but the interpreter chases
//! pointers and hashes names for every step it takes. [`compile`] flattens
//! that IR into a [`Program`]:
//!
//! * one [`PRule`] per nonterminal, indexed directly by [`NtId`];
//! * all alternatives in one dense [`PAlt`] array, each owning a
//!   contiguous span of the shared instruction array;
//! * one fixed-size [`Instr`] per term, in evaluation (topologically
//!   sorted) order, with the result slot (`written index`) pre-resolved to
//!   a `u16`;
//! * expressions flattened into one shared [`BExpr`] pool addressed by
//!   [`ExprId`] — operands are `u32` ids, not `Box` pointers;
//! * terminal literals concatenated into one byte pool addressed by
//!   `(offset, len)` spans;
//! * switch cases in one shared case pool.
//!
//! The program is executed by [`crate::interp::vm`]. Its shape is pinned
//! by snapshot tests over [`Program::disassemble`] so that codegen changes
//! show up as reviewable listing diffs.

use crate::arena::NtTable;
use crate::check::{CAlt, CExpr, CInterval, CRuleBody, CSwitchCase, CTermKind, Grammar, NtId};
use crate::intern::Sym;
use crate::syntax::{BinOp, Builtin};
use std::fmt::Write as _;
use std::sync::Arc;

/// Index of an expression in [`Program`]'s flat expression pool.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct ExprId(pub u32);

impl std::fmt::Debug for ExprId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ExprId({})", self.0)
    }
}

/// A span of bytes in the program's terminal-literal pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LitSpan {
    /// Offset of the first byte.
    pub start: u32,
    /// Number of bytes.
    pub len: u32,
}

/// One rule of the compiled program.
#[derive(Clone, Debug)]
pub struct PRule {
    /// How the rule parses.
    pub kind: PRuleKind,
    /// Whether this is a local (`where`) rule: it inherits the invoking
    /// alternative's environment and is never memoized.
    pub is_local: bool,
}

/// The rule dispatch variants.
#[derive(Clone, Copy, Debug)]
pub enum PRuleKind {
    /// Biased choice over `count` alternatives starting at
    /// [`Program::alts`]`[first]`.
    Alts {
        /// Index of the first alternative.
        first: u32,
        /// Number of alternatives.
        count: u32,
    },
    /// A builtin leaf parser.
    Builtin(Builtin),
    /// Index into the grammar's blackbox registry.
    Blackbox(u32),
}

/// One alternative: a contiguous instruction span plus the size of its
/// result-slot vector.
#[derive(Clone, Copy, Debug)]
pub struct PAlt {
    /// Index of the first instruction in [`Program::code`].
    pub first: u32,
    /// Number of instructions.
    pub count: u32,
    /// Number of result slots (`== n_terms` of the checked alternative).
    pub n_slots: u16,
}

/// One bytecode instruction — a checked term with pre-resolved operands.
/// `slot` is the term's written index: the result-vector slot it fills and
/// the index sibling [`BExpr::NtAttr`] references use.
#[derive(Clone, Copy, Debug)]
pub enum Instr {
    /// `"s"[lo, hi]` — match literal bytes inside the interval.
    Match {
        /// Literal bytes (span into [`Program::lits`]).
        lit: LitSpan,
        /// Left interval endpoint.
        lo: ExprId,
        /// Right interval endpoint.
        hi: ExprId,
        /// Result slot.
        slot: u16,
    },
    /// `B[lo, hi]` — invoke nonterminal `nt` on the interval.
    Call {
        /// Callee.
        nt: NtId,
        /// Left interval endpoint.
        lo: ExprId,
        /// Right interval endpoint.
        hi: ExprId,
        /// Result slot.
        slot: u16,
    },
    /// `{attr = expr}` — bind an attribute.
    Set {
        /// Attribute symbol.
        attr: Sym,
        /// Defining expression.
        expr: ExprId,
    },
    /// `⟨expr⟩` — fail the alternative unless `expr` is non-zero.
    Guard {
        /// Condition.
        expr: ExprId,
    },
    /// `for var = from to to do B[lo, hi]`.
    Loop {
        /// Loop variable symbol.
        var: Sym,
        /// Inclusive lower bound.
        from: ExprId,
        /// Exclusive upper bound.
        to: ExprId,
        /// Element nonterminal.
        nt: NtId,
        /// Per-element left endpoint (may mention `var`).
        lo: ExprId,
        /// Per-element right endpoint.
        hi: ExprId,
        /// Result slot.
        slot: u16,
    },
    /// `star B[lo, hi]` — one-or-more repetition.
    Star {
        /// Element nonterminal.
        nt: NtId,
        /// Left interval endpoint.
        lo: ExprId,
        /// Right interval endpoint.
        hi: ExprId,
        /// Result slot.
        slot: u16,
    },
    /// `switch(c1 : B1[..] / … / D[..])` — dispatch over
    /// [`Program::cases`]`[first..first+count]` (default last).
    Switch {
        /// Index of the first case.
        first: u32,
        /// Number of cases including the default.
        count: u16,
        /// Result slot.
        slot: u16,
    },
}

/// One case of a compiled switch.
#[derive(Clone, Copy, Debug)]
pub struct PCase {
    /// Guard (`None` for the default case).
    pub cond: Option<ExprId>,
    /// Case nonterminal.
    pub nt: NtId,
    /// Left interval endpoint.
    pub lo: ExprId,
    /// Right interval endpoint.
    pub hi: ExprId,
}

/// A compiled expression. The structural mirror of [`CExpr`] with all
/// `Box`es replaced by pool ids and term references narrowed to `u16`
/// slots; every variant is `Copy`.
#[derive(Clone, Copy, Debug)]
pub enum BExpr {
    /// Integer literal.
    Num(i64),
    /// Binary operation.
    Bin(BinOp, ExprId, ExprId),
    /// Ternary conditional.
    Cond(ExprId, ExprId, ExprId),
    /// `EOI` of the current rule's input.
    Eoi,
    /// A local attribute or loop variable.
    Local(Sym),
    /// `B.id` resolved to a sibling slot.
    NtAttr {
        /// Sibling result slot.
        slot: u16,
        /// Expected nonterminal.
        nt: NtId,
        /// Attribute symbol.
        attr: Sym,
    },
    /// `B(e).id` resolved to a sibling array slot.
    ElemAttr {
        /// Sibling array slot.
        slot: u16,
        /// Expected element nonterminal.
        nt: NtId,
        /// Element index expression.
        index: ExprId,
        /// Attribute symbol.
        attr: Sym,
    },
    /// `B.id` resolved through the invoking-alternative chain.
    OuterAttr {
        /// Nonterminal to search for.
        nt: NtId,
        /// Attribute symbol.
        attr: Sym,
    },
    /// `B(e).id` resolved through the invoking-alternative chain.
    OuterElem {
        /// Element nonterminal to search for.
        nt: NtId,
        /// Element index expression.
        index: ExprId,
        /// Attribute symbol.
        attr: Sym,
    },
    /// Existential scan over a sibling array slot (or the parent chain
    /// when `slot` is `None`).
    Exists {
        /// Bound variable.
        var: Sym,
        /// Sibling array slot, if the array is a sibling.
        slot: Option<u16>,
        /// Element nonterminal.
        nt: NtId,
        /// Per-element condition.
        cond: ExprId,
        /// Result when an element matches.
        then: ExprId,
        /// Result when none matches.
        els: ExprId,
    },
}

/// Pre-sizing hints for the VM's per-parse allocations (see
/// [`Program::size_hints`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeHints {
    /// Frame-stack capacity (static call-graph nesting plus slack).
    pub frames: usize,
    /// Arena node-pool capacity.
    pub nodes: usize,
    /// Arena leaf-pool capacity.
    pub leaves: usize,
    /// Arena child-id pool capacity.
    pub children: usize,
    /// Arena shift-record capacity.
    pub shifts: usize,
}

/// A checked grammar lowered to flat bytecode. Build one with [`compile`];
/// execute it with [`crate::interp::vm::VmParser`].
#[derive(Debug)]
pub struct Program {
    pub(crate) rules: Vec<PRule>,
    pub(crate) alts: Vec<PAlt>,
    pub(crate) code: Vec<Instr>,
    pub(crate) exprs: Vec<BExpr>,
    pub(crate) cases: Vec<PCase>,
    pub(crate) lits: Vec<u8>,
    pub(crate) nt_table: Arc<NtTable>,
    pub(crate) start: NtId,
}

/// Lowers a checked grammar into a flat bytecode [`Program`].
pub fn compile(g: &Grammar) -> Program {
    let mut c = Compiler {
        out: Program {
            rules: Vec::with_capacity(g.nt_count()),
            alts: Vec::new(),
            code: Vec::new(),
            exprs: Vec::new(),
            cases: Vec::new(),
            lits: Vec::new(),
            nt_table: Arc::new(NtTable {
                names: g.rules().iter().map(|r| r.name.clone()).collect(),
                syms: g.rules().iter().map(|r| r.name_sym).collect(),
            }),
            start: g.start_nt(),
        },
    };
    for rule in g.rules() {
        let kind = match &rule.body {
            CRuleBody::Builtin(b) => PRuleKind::Builtin(*b),
            CRuleBody::Blackbox(idx) => PRuleKind::Blackbox(*idx as u32),
            CRuleBody::Alts(alts) => {
                let first = c.out.alts.len() as u32;
                for alt in alts {
                    c.compile_alt(alt);
                }
                PRuleKind::Alts { first, count: alts.len() as u32 }
            }
        };
        c.out.rules.push(PRule { kind, is_local: rule.is_local });
    }
    c.out
}

struct Compiler {
    out: Program,
}

impl Compiler {
    fn compile_alt(&mut self, alt: &CAlt) {
        // Lower the terms into a scratch vector first: expression lowering
        // appends to the shared pools, so instruction emission must not be
        // interleaved with reading `self.out.code`.
        let mut instrs = Vec::with_capacity(alt.terms.len());
        for term in &alt.terms {
            let slot = term.orig_index as u16;
            let instr = match &term.kind {
                CTermKind::Terminal { bytes, interval } => {
                    let lit = self.lit(bytes);
                    let (lo, hi) = self.interval(interval);
                    Instr::Match { lit, lo, hi, slot }
                }
                CTermKind::Symbol { nt, interval } => {
                    let (lo, hi) = self.interval(interval);
                    Instr::Call { nt: *nt, lo, hi, slot }
                }
                CTermKind::AttrDef { attr, expr } => {
                    Instr::Set { attr: *attr, expr: self.expr(expr) }
                }
                CTermKind::Predicate { expr } => Instr::Guard { expr: self.expr(expr) },
                CTermKind::Array { var, from, to, nt, interval } => {
                    let from = self.expr(from);
                    let to = self.expr(to);
                    let (lo, hi) = self.interval(interval);
                    Instr::Loop { var: *var, from, to, nt: *nt, lo, hi, slot }
                }
                CTermKind::Star { nt, interval } => {
                    let (lo, hi) = self.interval(interval);
                    Instr::Star { nt: *nt, lo, hi, slot }
                }
                CTermKind::Switch { cases } => {
                    let first = self.out.cases.len() as u32;
                    // Reserve the span, then fill it: case lowering appends
                    // to the expression pool only.
                    let lowered: Vec<PCase> = cases.iter().map(|case| self.case(case)).collect();
                    self.out.cases.extend(lowered);
                    Instr::Switch { first, count: cases.len() as u16, slot }
                }
            };
            instrs.push(instr);
        }
        let first = self.out.code.len() as u32;
        let count = instrs.len() as u32;
        self.out.code.extend(instrs);
        self.out.alts.push(PAlt { first, count, n_slots: alt.n_terms as u16 });
    }

    fn case(&mut self, case: &CSwitchCase) -> PCase {
        let cond = case.cond.as_ref().map(|c| self.expr(c));
        let (lo, hi) = self.interval(&case.interval);
        PCase { cond, nt: case.nt, lo, hi }
    }

    fn lit(&mut self, bytes: &[u8]) -> LitSpan {
        let start = self.out.lits.len() as u32;
        self.out.lits.extend_from_slice(bytes);
        LitSpan { start, len: bytes.len() as u32 }
    }

    fn interval(&mut self, iv: &CInterval) -> (ExprId, ExprId) {
        (self.expr(&iv.lo), self.expr(&iv.hi))
    }

    fn push_expr(&mut self, e: BExpr) -> ExprId {
        let id = ExprId(self.out.exprs.len() as u32);
        self.out.exprs.push(e);
        id
    }

    fn expr(&mut self, e: &CExpr) -> ExprId {
        let lowered = match e {
            CExpr::Num(n) => BExpr::Num(*n),
            CExpr::Eoi => BExpr::Eoi,
            CExpr::Local(sym) => BExpr::Local(*sym),
            CExpr::Bin(op, a, b) => {
                let a = self.expr(a);
                let b = self.expr(b);
                BExpr::Bin(*op, a, b)
            }
            CExpr::Cond(c, t, f) => {
                let c = self.expr(c);
                let t = self.expr(t);
                let f = self.expr(f);
                BExpr::Cond(c, t, f)
            }
            CExpr::NtAttr { term, nt, attr } => {
                BExpr::NtAttr { slot: *term as u16, nt: *nt, attr: *attr }
            }
            CExpr::ElemAttr { term, nt, index, attr } => {
                let index = self.expr(index);
                BExpr::ElemAttr { slot: *term as u16, nt: *nt, index, attr: *attr }
            }
            CExpr::OuterAttr { nt, attr } => BExpr::OuterAttr { nt: *nt, attr: *attr },
            CExpr::OuterElem { nt, index, attr } => {
                let index = self.expr(index);
                BExpr::OuterElem { nt: *nt, index, attr: *attr }
            }
            CExpr::Exists { var, term, nt, cond, then, els } => {
                let cond = self.expr(cond);
                let then = self.expr(then);
                let els = self.expr(els);
                BExpr::Exists { var: *var, slot: term.map(|t| t as u16), nt: *nt, cond, then, els }
            }
        };
        self.push_expr(lowered)
    }
}

impl Program {
    /// The start nonterminal the program was compiled for.
    pub fn start_nt(&self) -> NtId {
        self.start
    }

    /// Number of compiled rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Number of instructions across all alternatives.
    pub fn instr_count(&self) -> usize {
        self.code.len()
    }

    /// Pre-sizing hints for the VM's per-parse allocations, derived from
    /// compile-time program statistics: the frame stack from the static
    /// call-graph nesting, the arena pools from the instruction count.
    /// Hints are capacities, not limits — deep recursion and large inputs
    /// still grow the vectors; the clamps keep small grammars from
    /// over-allocating per parse.
    pub fn size_hints(&self) -> SizeHints {
        let nesting = self.static_nesting();
        let instrs = self.code.len();
        SizeHints {
            frames: (nesting + 8).min(128),
            nodes: instrs.clamp(32, 512),
            leaves: instrs.clamp(32, 512),
            children: (2 * instrs).clamp(64, 1024),
            shifts: instrs.clamp(32, 512),
        }
    }

    /// Longest acyclic call chain from the start rule (recursive cycles
    /// contribute one traversal; their true depth is input-dependent).
    fn static_nesting(&self) -> usize {
        fn depth_of(p: &Program, nt: usize, memo: &mut [u32], on_path: &mut [bool]) -> u32 {
            if memo[nt] != u32::MAX {
                return memo[nt];
            }
            if on_path[nt] {
                return 0;
            }
            on_path[nt] = true;
            let mut best = 0;
            if let PRuleKind::Alts { first, count } = p.rules[nt].kind {
                for alt in &p.alts[first as usize..(first + count) as usize] {
                    for instr in &p.code[alt.first as usize..(alt.first + alt.count) as usize] {
                        match *instr {
                            Instr::Call { nt: c, .. }
                            | Instr::Loop { nt: c, .. }
                            | Instr::Star { nt: c, .. } => {
                                best = best.max(1 + depth_of(p, c.0 as usize, memo, on_path));
                            }
                            Instr::Switch { first, count, .. } => {
                                for case in
                                    &p.cases[first as usize..(first + count as u32) as usize]
                                {
                                    best = best
                                        .max(1 + depth_of(p, case.nt.0 as usize, memo, on_path));
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
            on_path[nt] = false;
            memo[nt] = best;
            best
        }
        let mut memo = vec![u32::MAX; self.rules.len()];
        let mut on_path = vec![false; self.rules.len()];
        1 + depth_of(self, self.start.0 as usize, &mut memo, &mut on_path) as usize
    }

    /// The shared nonterminal name table (also carried by every
    /// [`crate::arena::TreeArena`] this program produces).
    pub(crate) fn nt_table(&self) -> Arc<NtTable> {
        self.nt_table.clone()
    }

    fn nt_name(&self, nt: NtId) -> &str {
        &self.nt_table.names[nt.0 as usize]
    }

    /// Renders a human-readable listing of the whole program.
    ///
    /// The output is deterministic for a given grammar; the snapshot tests
    /// pin it so that lowering changes show up as reviewable diffs.
    pub fn disassemble(&self, g: &Grammar) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "; program `{}`: {} rules, {} alts, {} instrs, {} exprs, {} cases, {} lit bytes",
            g.nt_name(self.start),
            self.rules.len(),
            self.alts.len(),
            self.code.len(),
            self.exprs.len(),
            self.cases.len(),
            self.lits.len()
        );
        for (i, rule) in self.rules.iter().enumerate() {
            let nt = NtId(i as u32);
            let local = if rule.is_local { " (local)" } else { "" };
            match rule.kind {
                PRuleKind::Builtin(b) => {
                    let _ = writeln!(s, "rule {i} {}{local} := builtin {b}", self.nt_name(nt));
                }
                PRuleKind::Blackbox(idx) => {
                    let name =
                        g.blackboxes().get(idx as usize).map(|bb| bb.name.as_str()).unwrap_or("?");
                    let _ = writeln!(
                        s,
                        "rule {i} {}{local} := blackbox #{idx} ({name})",
                        self.nt_name(nt)
                    );
                }
                PRuleKind::Alts { first, count } => {
                    let _ = writeln!(s, "rule {i} {}{local}:", self.nt_name(nt));
                    for a in first..first + count {
                        let alt = self.alts[a as usize];
                        let _ = writeln!(s, "  alt {} [slots={}]:", a - first, alt.n_slots);
                        for pc in alt.first..alt.first + alt.count {
                            let _ = writeln!(
                                s,
                                "    {pc:04}  {}",
                                self.render_instr(g, self.code[pc as usize])
                            );
                        }
                    }
                }
            }
        }
        s
    }

    fn render_instr(&self, g: &Grammar, instr: Instr) -> String {
        match instr {
            Instr::Match { lit, lo, hi, slot } => {
                let bytes = &self.lits[lit.start as usize..(lit.start + lit.len) as usize];
                format!(
                    "match {}[{}, {}] -> s{slot}",
                    crate::interp::preview(bytes),
                    self.render_expr(g, lo),
                    self.render_expr(g, hi)
                )
            }
            Instr::Call { nt, lo, hi, slot } => format!(
                "call {}[{}, {}] -> s{slot}",
                self.nt_name(nt),
                self.render_expr(g, lo),
                self.render_expr(g, hi)
            ),
            Instr::Set { attr, expr } => {
                format!("set {} = {}", g.attr_name(attr), self.render_expr(g, expr))
            }
            Instr::Guard { expr } => format!("guard {}", self.render_expr(g, expr)),
            Instr::Loop { var, from, to, nt, lo, hi, slot } => format!(
                "loop {} = {} to {} do {}[{}, {}] -> s{slot}",
                g.attr_name(var),
                self.render_expr(g, from),
                self.render_expr(g, to),
                self.nt_name(nt),
                self.render_expr(g, lo),
                self.render_expr(g, hi)
            ),
            Instr::Star { nt, lo, hi, slot } => format!(
                "star {}[{}, {}] -> s{slot}",
                self.nt_name(nt),
                self.render_expr(g, lo),
                self.render_expr(g, hi)
            ),
            Instr::Switch { first, count, slot } => {
                let mut s = format!("switch -> s{slot}");
                for case in &self.cases[first as usize..(first + count as u32) as usize] {
                    let target = format!(
                        "{}[{}, {}]",
                        self.nt_name(case.nt),
                        self.render_expr(g, case.lo),
                        self.render_expr(g, case.hi)
                    );
                    match case.cond {
                        Some(c) => {
                            let _ = write!(
                                s,
                                "\n            case {} => {target}",
                                self.render_expr(g, c)
                            );
                        }
                        None => {
                            let _ = write!(s, "\n            default => {target}");
                        }
                    }
                }
                s
            }
        }
    }

    fn render_expr(&self, g: &Grammar, e: ExprId) -> String {
        match self.exprs[e.0 as usize] {
            BExpr::Num(n) => n.to_string(),
            BExpr::Eoi => "EOI".into(),
            BExpr::Local(sym) => g.attr_name(sym).to_owned(),
            BExpr::Bin(op, a, b) => {
                format!("({} {op} {})", self.render_expr(g, a), self.render_expr(g, b))
            }
            BExpr::Cond(c, t, f) => format!(
                "({} ? {} : {})",
                self.render_expr(g, c),
                self.render_expr(g, t),
                self.render_expr(g, f)
            ),
            BExpr::NtAttr { slot, nt, attr } => {
                format!("s{slot}:{}.{}", self.nt_name(nt), g.attr_name(attr))
            }
            BExpr::ElemAttr { slot, nt, index, attr } => format!(
                "s{slot}:{}({}).{}",
                self.nt_name(nt),
                self.render_expr(g, index),
                g.attr_name(attr)
            ),
            BExpr::OuterAttr { nt, attr } => {
                format!("outer:{}.{}", self.nt_name(nt), g.attr_name(attr))
            }
            BExpr::OuterElem { nt, index, attr } => format!(
                "outer:{}({}).{}",
                self.nt_name(nt),
                self.render_expr(g, index),
                g.attr_name(attr)
            ),
            BExpr::Exists { var, slot, nt, cond, then, els } => {
                let arr = match slot {
                    Some(sl) => format!("s{sl}:{}", self.nt_name(nt)),
                    None => format!("outer:{}", self.nt_name(nt)),
                };
                format!(
                    "(exists {} in {arr}. {} ? {} : {})",
                    g.attr_name(var),
                    self.render_expr(g, cond),
                    self.render_expr(g, then),
                    self.render_expr(g, els)
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::parse_grammar;

    fn fig2() -> Grammar {
        parse_grammar(
            r#"
            S -> H[0, 8] Data[H.offset, H.offset + H.length];
            H -> Int[0, 4] {offset = Int.val} Int[4, 8] {length = Int.val};
            Int := u32le;
            Data := bytes;
            "#,
        )
        .unwrap()
    }

    #[test]
    fn compiles_fig2_to_flat_program() {
        let g = fig2();
        let p = compile(&g);
        assert_eq!(p.rule_count(), 4);
        // S has one alternative with two calls; H has four terms.
        assert_eq!(p.alts.len(), 2);
        assert_eq!(p.instr_count(), 6);
        assert!(matches!(p.rules[g.nt_id("Int").unwrap().0 as usize].kind, PRuleKind::Builtin(_)));
    }

    #[test]
    fn disassembly_is_deterministic_and_readable() {
        let g = fig2();
        let p = compile(&g);
        let d1 = p.disassemble(&g);
        let d2 = compile(&g).disassemble(&g);
        assert_eq!(d1, d2);
        assert!(d1.contains("call H[0, 8] -> s0"), "got:\n{d1}");
        assert!(d1.contains("set offset = s0:Int.val"), "got:\n{d1}");
        assert!(d1.contains(":= builtin u32le"), "got:\n{d1}");
    }
}
