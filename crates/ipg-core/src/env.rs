//! Attribute environments.
//!
//! The parsing semantics (Fig. 8) threads an environment `E` mapping
//! attribute ids to integer values through every alternative. Environments
//! are small (a handful of attributes per rule), so they are flat sequences
//! with linear lookup, which is faster than hashing at these sizes and keeps
//! parse trees compact. The first [`INLINE`] bindings live inline in the
//! struct: the interpreter builds (and clones) an environment for every
//! alternative it tries, and keeping `EOI`/`start`/`end` plus typical
//! attribute counts out of the heap removes an allocation from that hot
//! loop. Bindings beyond the inline capacity spill to a `Vec`.

use crate::intern::Sym;

/// Inline binding capacity. Six covers `EOI`/`start`/`end` plus three
/// user attributes — the common case across the format grammars.
const INLINE: usize = 6;

/// Well-known symbols. [`crate::check::check`] interns these first, in this
/// exact order, so the constants below are valid in every checked grammar.
pub mod wellknown {
    use crate::intern::{Interner, Sym};

    /// `start` — left-most input offset touched by a nonterminal.
    pub const START: Sym = Sym(0);
    /// `end` — one plus the right-most input offset touched.
    pub const END: Sym = Sym(1);
    /// `EOI` — length of the current rule's input.
    pub const EOI: Sym = Sym(2);
    /// `val` — the value attribute defined by every builtin parser.
    pub const VAL: Sym = Sym(3);

    /// Creates an interner pre-seeded with the well-known symbols.
    pub fn seeded_interner() -> Interner {
        let mut i = Interner::new();
        assert_eq!(i.intern("start"), START);
        assert_eq!(i.intern("end"), END);
        assert_eq!(i.intern("EOI"), EOI);
        assert_eq!(i.intern("val"), VAL);
        i
    }
}

/// An attribute environment: a map from [`Sym`] to `i64`, stored as a
/// logical insertion-ordered sequence `inline[..inline_len] ++ spill`.
#[derive(Clone)]
pub struct Env {
    inline: [(Sym, i64); INLINE],
    inline_len: u8,
    spill: Vec<(Sym, i64)>,
}

impl Default for Env {
    fn default() -> Self {
        Env { inline: [(Sym(0), 0); INLINE], inline_len: 0, spill: Vec::new() }
    }
}

impl Env {
    /// The empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// The initial environment of an alternative parsing an input of length
    /// `len`: `{EOI ↦ len, start ↦ len, end ↦ 0}` (rule R-AltSucc).
    /// Allocation-free: the three well-known bindings fit inline.
    #[inline]
    pub fn initial(len: usize) -> Self {
        let mut env = Env::default();
        env.inline[0] = (wellknown::EOI, len as i64);
        env.inline[1] = (wellknown::START, len as i64);
        env.inline[2] = (wellknown::END, 0);
        env.inline_len = 3;
        env
    }

    #[inline]
    fn inline_entries(&self) -> &[(Sym, i64)] {
        &self.inline[..self.inline_len as usize]
    }

    /// Looks up `sym` (most recent binding wins).
    #[inline]
    pub fn get(&self, sym: Sym) -> Option<i64> {
        self.iter_rev().find(|(s, _)| *s == sym).map(|(_, v)| v)
    }

    fn find_mut(&mut self, sym: Sym) -> Option<&mut (Sym, i64)> {
        let inline = &mut self.inline[..self.inline_len as usize];
        inline.iter_mut().chain(self.spill.iter_mut()).find(|(s, _)| *s == sym)
    }

    /// Binds `sym` to `v`, overwriting any previous binding.
    pub fn set(&mut self, sym: Sym, v: i64) {
        if let Some(entry) = self.find_mut(sym) {
            entry.1 = v;
        } else {
            self.push_scope(sym, v);
        }
    }

    /// Pushes a binding without removing a previous one; paired with
    /// [`Env::pop_scope`] for loop variables.
    #[inline]
    pub fn push_scope(&mut self, sym: Sym, v: i64) {
        // Invariant: `spill` is only non-empty when the inline buffer is
        // full, so the logical order is always inline-then-spill.
        if (self.inline_len as usize) < INLINE && self.spill.is_empty() {
            self.inline[self.inline_len as usize] = (sym, v);
            self.inline_len += 1;
        } else {
            self.spill.push((sym, v));
        }
    }

    /// Removes the most recent binding (added by [`Env::push_scope`]).
    pub fn pop_scope(&mut self) {
        if self.spill.pop().is_none() {
            self.inline_len = self.inline_len.saturating_sub(1);
        }
    }

    /// Updates the most recent binding for `sym` in place (used to advance a
    /// loop variable without push/pop churn).
    pub fn set_top(&mut self, sym: Sym, v: i64) {
        let inline = &mut self.inline[..self.inline_len as usize];
        if let Some(entry) =
            self.spill.iter_mut().rev().chain(inline.iter_mut().rev()).find(|(s, _)| *s == sym)
        {
            entry.1 = v;
        } else {
            self.push_scope(sym, v);
        }
    }

    /// The `start` value (panics if absent — environments built with
    /// [`Env::initial`] always have it).
    #[inline]
    pub fn start(&self) -> i64 {
        self.get(wellknown::START).expect("env has start")
    }

    /// The `end` value.
    #[inline]
    pub fn end(&self) -> i64 {
        self.get(wellknown::END).expect("env has end")
    }

    /// Implements `updStartEnd(E, l, r, b)` from the paper: when `b` holds,
    /// widen the touched region to include `[l, r)`.
    #[inline]
    pub fn upd_start_end(&mut self, l: i64, r: i64, b: bool) {
        if b {
            let s = self.start().min(l);
            let e = self.end().max(r);
            self.set(wellknown::START, s);
            self.set(wellknown::END, e);
        }
    }

    /// Shifts `start` and `end` by `delta` (rule T-NTSucc's re-basing of a
    /// callee's touched region into caller coordinates).
    #[inline]
    pub fn shift_start_end(&mut self, delta: i64) {
        let s = self.start();
        let e = self.end();
        self.set(wellknown::START, s + delta);
        self.set(wellknown::END, e + delta);
    }

    /// The initial environment of an alternative whose input length is not
    /// known yet (a streaming session's root before end-of-input). `EOI`
    /// and `start` hold [`Env::OPEN_LEN`] placeholders; [`Env::seal`]
    /// patches them once the length is known. The placeholders are safe
    /// because `start` only ever shrinks via `min` (so sealing with the
    /// real length commutes with every update made in between) and the VM
    /// suspends instead of reading `EOI`/`start` from an unsealed frame.
    #[inline]
    pub(crate) fn initial_open() -> Self {
        let mut env = Env::default();
        env.inline[0] = (wellknown::EOI, Self::OPEN_LEN);
        env.inline[1] = (wellknown::START, Self::OPEN_LEN);
        env.inline[2] = (wellknown::END, 0);
        env.inline_len = 3;
        env
    }

    /// Placeholder value of `EOI`/`start` in an unsealed open environment.
    pub(crate) const OPEN_LEN: i64 = i64::MAX;

    /// Seals an environment built with [`Env::initial_open`] once the true
    /// input length is known: `EOI` becomes `len`, and `start` takes the
    /// `min` with `len` it would have started from (a no-op if any term
    /// already shrank it below `len`).
    #[inline]
    pub(crate) fn seal(&mut self, len: i64) {
        debug_assert_eq!(self.inline[0].0, wellknown::EOI);
        debug_assert_eq!(self.inline[1].0, wellknown::START);
        self.inline[0].1 = len;
        let s = &mut self.inline[1].1;
        *s = (*s).min(len);
    }

    /// O(1) accessors for the three well-known bindings, used by the
    /// bytecode VM. Environments built with [`Env::initial`] keep
    /// `EOI`/`start`/`end` at inline slots 0/1/2 forever: `set` updates in
    /// place, scoped pushes and pops are balanced on top of them, and the
    /// checker rejects loop variables named after reserved attributes, so
    /// nothing can shadow or displace the first three slots. The
    /// tree-walking interpreter deliberately keeps using the generic
    /// scanning accessors — it is the frozen reference implementation.
    #[inline]
    pub(crate) fn fast_eoi(&self) -> i64 {
        debug_assert_eq!(self.inline[0].0, wellknown::EOI);
        self.inline[0].1
    }

    /// O(1) `start` (see [`Env::fast_eoi`] for the layout invariant).
    #[inline]
    pub(crate) fn fast_start(&self) -> i64 {
        debug_assert_eq!(self.inline[1].0, wellknown::START);
        self.inline[1].1
    }

    /// O(1) `end`.
    #[inline]
    pub(crate) fn fast_end(&self) -> i64 {
        debug_assert_eq!(self.inline[2].0, wellknown::END);
        self.inline[2].1
    }

    /// O(1) `updStartEnd` (identical observable effect to
    /// [`Env::upd_start_end`] under the [`Env::fast_eoi`] invariant).
    #[inline]
    pub(crate) fn fast_upd_start_end(&mut self, l: i64, r: i64, b: bool) {
        debug_assert_eq!(self.inline[1].0, wellknown::START);
        debug_assert_eq!(self.inline[2].0, wellknown::END);
        if b {
            let s = &mut self.inline[1].1;
            *s = (*s).min(l);
            let e = &mut self.inline[2].1;
            *e = (*e).max(r);
        }
    }

    /// O(1) `shift_start_end`.
    #[inline]
    pub(crate) fn fast_shift_start_end(&mut self, delta: i64) {
        debug_assert_eq!(self.inline[1].0, wellknown::START);
        debug_assert_eq!(self.inline[2].0, wellknown::END);
        self.inline[1].1 += delta;
        self.inline[2].1 += delta;
    }

    /// Iterates over `(sym, value)` bindings in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, i64)> + '_ {
        self.inline_entries().iter().chain(self.spill.iter()).copied()
    }

    fn iter_rev(&self) -> impl Iterator<Item = (Sym, i64)> + '_ {
        self.spill.iter().rev().chain(self.inline_entries().iter().rev()).copied()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.inline_len as usize + self.spill.len()
    }

    /// Whether the environment is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl PartialEq for Env {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for Env {}

impl std::fmt::Debug for Env {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_env_matches_r_altsucc() {
        let e = Env::initial(10);
        assert_eq!(e.get(wellknown::EOI), Some(10));
        assert_eq!(e.get(wellknown::START), Some(10));
        assert_eq!(e.get(wellknown::END), Some(0));
    }

    #[test]
    fn set_overwrites() {
        let mut e = Env::new();
        let s = Sym(7);
        e.set(s, 1);
        e.set(s, 2);
        assert_eq!(e.get(s), Some(2));
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn scoped_bindings_shadow_and_restore() {
        let mut e = Env::new();
        let s = Sym(7);
        e.set(s, 1);
        e.push_scope(s, 99);
        assert_eq!(e.get(s), Some(99));
        e.pop_scope();
        assert_eq!(e.get(s), Some(1));
    }

    #[test]
    fn upd_start_end_widens_only_when_flag_holds() {
        let mut e = Env::initial(10);
        e.upd_start_end(3, 5, false);
        assert_eq!((e.start(), e.end()), (10, 0));
        e.upd_start_end(3, 5, true);
        assert_eq!((e.start(), e.end()), (3, 5));
        e.upd_start_end(1, 4, true);
        assert_eq!((e.start(), e.end()), (1, 5));
    }

    #[test]
    fn spill_beyond_inline_capacity_preserves_semantics() {
        let mut e = Env::initial(10);
        // Push well past the inline capacity.
        for i in 0..20u32 {
            e.push_scope(Sym(100 + i), i as i64);
        }
        assert_eq!(e.len(), 23);
        for i in 0..20u32 {
            assert_eq!(e.get(Sym(100 + i)), Some(i as i64));
        }
        // Overwrites find entries in both regions.
        e.set(wellknown::EOI, 77);
        e.set(Sym(119), -1);
        assert_eq!(e.get(wellknown::EOI), Some(77));
        assert_eq!(e.get(Sym(119)), Some(-1));
        // set_top hits the most recent binding, spill first.
        e.push_scope(Sym(105), 500);
        e.set_top(Sym(105), 501);
        assert_eq!(e.get(Sym(105)), Some(501));
        e.pop_scope();
        assert_eq!(e.get(Sym(105)), Some(5));
        // Insertion order is stable across the inline/spill boundary.
        let syms: Vec<u32> = e.iter().map(|(s, _)| s.0).collect();
        assert_eq!(&syms[..3], &[2, 0, 1], "EOI, start, end first");
        assert_eq!(syms.len(), 23);
        assert!(syms.windows(2).skip(3).all(|w| w[0] < w[1]), "pushes stay ordered");
    }

    #[test]
    fn equality_ignores_inline_vs_spill_split() {
        let mut a = Env::new();
        let mut b = Env::new();
        for i in 0..8u32 {
            a.push_scope(Sym(i), i as i64);
        }
        for i in 0..8u32 {
            b.push_scope(Sym(i), i as i64);
        }
        assert_eq!(a, b);
        b.set(Sym(7), 99);
        assert_ne!(a, b);
    }

    #[test]
    fn shift_start_end_rebases_both() {
        let mut e = Env::initial(10);
        e.upd_start_end(2, 5, true);
        e.shift_start_end(3);
        assert_eq!((e.start(), e.end()), (5, 8));
    }

    #[test]
    fn seeded_interner_matches_constants() {
        let i = wellknown::seeded_interner();
        assert_eq!(i.get("start"), Some(wellknown::START));
        assert_eq!(i.get("end"), Some(wellknown::END));
        assert_eq!(i.get("EOI"), Some(wellknown::EOI));
        assert_eq!(i.get("val"), Some(wellknown::VAL));
    }
}
