//! Attribute environments.
//!
//! The parsing semantics (Fig. 8) threads an environment `E` mapping
//! attribute ids to integer values through every alternative. Environments
//! are small (a handful of attributes per rule), so they are flat vectors
//! with linear lookup, which is faster than hashing at these sizes and keeps
//! parse trees compact.

use crate::intern::Sym;

/// Well-known symbols. [`crate::check::check`] interns these first, in this
/// exact order, so the constants below are valid in every checked grammar.
pub mod wellknown {
    use crate::intern::{Interner, Sym};

    /// `start` — left-most input offset touched by a nonterminal.
    pub const START: Sym = Sym(0);
    /// `end` — one plus the right-most input offset touched.
    pub const END: Sym = Sym(1);
    /// `EOI` — length of the current rule's input.
    pub const EOI: Sym = Sym(2);
    /// `val` — the value attribute defined by every builtin parser.
    pub const VAL: Sym = Sym(3);

    /// Creates an interner pre-seeded with the well-known symbols.
    pub fn seeded_interner() -> Interner {
        let mut i = Interner::new();
        assert_eq!(i.intern("start"), START);
        assert_eq!(i.intern("end"), END);
        assert_eq!(i.intern("EOI"), EOI);
        assert_eq!(i.intern("val"), VAL);
        i
    }
}

/// An attribute environment: a map from [`Sym`] to `i64`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Env {
    entries: Vec<(Sym, i64)>,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// The initial environment of an alternative parsing an input of length
    /// `len`: `{EOI ↦ len, start ↦ len, end ↦ 0}` (rule R-AltSucc).
    pub fn initial(len: usize) -> Self {
        Env {
            entries: vec![
                (wellknown::EOI, len as i64),
                (wellknown::START, len as i64),
                (wellknown::END, 0),
            ],
        }
    }

    /// Looks up `sym`.
    pub fn get(&self, sym: Sym) -> Option<i64> {
        self.entries.iter().rev().find(|(s, _)| *s == sym).map(|&(_, v)| v)
    }

    /// Binds `sym` to `v`, overwriting any previous binding.
    pub fn set(&mut self, sym: Sym, v: i64) {
        if let Some(entry) = self.entries.iter_mut().find(|(s, _)| *s == sym) {
            entry.1 = v;
        } else {
            self.entries.push((sym, v));
        }
    }

    /// Pushes a binding without removing a previous one; paired with
    /// [`Env::pop_scope`] for loop variables.
    pub fn push_scope(&mut self, sym: Sym, v: i64) {
        self.entries.push((sym, v));
    }

    /// Removes the most recent binding (added by [`Env::push_scope`]).
    pub fn pop_scope(&mut self) {
        self.entries.pop();
    }

    /// Updates the most recent binding for `sym` in place (used to advance a
    /// loop variable without push/pop churn).
    pub fn set_top(&mut self, sym: Sym, v: i64) {
        if let Some(entry) = self.entries.iter_mut().rev().find(|(s, _)| *s == sym) {
            entry.1 = v;
        } else {
            self.entries.push((sym, v));
        }
    }

    /// The `start` value (panics if absent — environments built with
    /// [`Env::initial`] always have it).
    pub fn start(&self) -> i64 {
        self.get(wellknown::START).expect("env has start")
    }

    /// The `end` value.
    pub fn end(&self) -> i64 {
        self.get(wellknown::END).expect("env has end")
    }

    /// Implements `updStartEnd(E, l, r, b)` from the paper: when `b` holds,
    /// widen the touched region to include `[l, r)`.
    pub fn upd_start_end(&mut self, l: i64, r: i64, b: bool) {
        if b {
            let s = self.start().min(l);
            let e = self.end().max(r);
            self.set(wellknown::START, s);
            self.set(wellknown::END, e);
        }
    }

    /// Iterates over `(sym, value)` bindings in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, i64)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the environment is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_env_matches_r_altsucc() {
        let e = Env::initial(10);
        assert_eq!(e.get(wellknown::EOI), Some(10));
        assert_eq!(e.get(wellknown::START), Some(10));
        assert_eq!(e.get(wellknown::END), Some(0));
    }

    #[test]
    fn set_overwrites() {
        let mut e = Env::new();
        let s = Sym(7);
        e.set(s, 1);
        e.set(s, 2);
        assert_eq!(e.get(s), Some(2));
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn scoped_bindings_shadow_and_restore() {
        let mut e = Env::new();
        let s = Sym(7);
        e.set(s, 1);
        e.push_scope(s, 99);
        assert_eq!(e.get(s), Some(99));
        e.pop_scope();
        assert_eq!(e.get(s), Some(1));
    }

    #[test]
    fn upd_start_end_widens_only_when_flag_holds() {
        let mut e = Env::initial(10);
        e.upd_start_end(3, 5, false);
        assert_eq!((e.start(), e.end()), (10, 0));
        e.upd_start_end(3, 5, true);
        assert_eq!((e.start(), e.end()), (3, 5));
        e.upd_start_end(1, 4, true);
        assert_eq!((e.start(), e.end()), (1, 5));
    }

    #[test]
    fn seeded_interner_matches_constants() {
        let i = wellknown::seeded_interner();
        assert_eq!(i.get("start"), Some(wellknown::START));
        assert_eq!(i.get("end"), Some(wellknown::END));
        assert_eq!(i.get("EOI"), Some(wellknown::EOI));
        assert_eq!(i.get("val"), Some(wellknown::VAL));
    }
}
