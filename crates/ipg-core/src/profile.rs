//! Grammar-level VM profiling: per-rule cycle attribution, memo
//! hit/miss counts, pc-indexed instruction hit counters, and a
//! folded-stack export keyed by the grammar's static call graph.
//!
//! The VM is instrumented through the [`ProfSink`] trait, a set of
//! inline hooks threaded through [`crate::interp::vm`] as a type
//! parameter. The unit type `()` is the *disabled* sink: every hook is
//! an empty `#[inline(always)]` function, so the uninstrumented parse
//! loop monomorphizes to exactly the code it was before profiling
//! existed — zero overhead by construction, not by measurement.
//! [`Profiler`] is the *enabled* sink; it is driven by
//! [`crate::interp::vm::VmParser::parse_profiled`] and aggregated into a
//! [`ProfileReport`].
//!
//! ## Attribution model
//!
//! Wall-clock self time is attributed with a boundary-flush scheme: the
//! profiler keeps its own nonterminal stack mirroring the VM's frame
//! stack, and on every transition (rule enter, rule exit, leaf
//! builtin/blackbox bracket) the time elapsed since the previous
//! transition is charged to the rule on top of the stack. Work done
//! between a rule's entry and its first child call is therefore *self*
//! time of that rule; child time is charged to the child. Time before
//! the root call (session setup) is reported as `unattributed`.
//!
//! Instruction and suspension counters are pc-indexed (one slot per
//! [`crate::bytecode::Instr`] of the compiled program) and can be
//! correlated with `Program::disassemble` listings.
//!
//! ## Folded stacks
//!
//! [`ProfileReport::folded`] emits the classic `a;b;c value` folded
//! format consumed by flamegraph tooling. The parse's true dynamic call
//! stacks are not recorded (that would mean per-call allocation on the
//! hot path); instead each rule's self time is keyed by the *shortest
//! static call path* from the start rule, computed by BFS over the
//! compiled program's call graph (`Call`/`Loop`/`Star` instructions and
//! `Switch` cases). For recursion-free format grammars this coincides
//! with the dominant dynamic stack; for recursive rules it picks the
//! shortest entry path. Values are nanoseconds of self time.

use crate::bytecode::{Instr, PRuleKind, Program};
use crate::check::{Grammar, NtId};
use std::fmt::Write as _;
use std::time::Instant;

/// VM instrumentation hooks. Implemented by `()` (disabled: every hook
/// is a no-op that compiles away) and by [`Profiler`] (enabled).
pub(crate) trait ProfSink {
    /// A rule invocation (every `begin_call`, including memo hits,
    /// builtins and blackboxes).
    #[inline(always)]
    fn call(&mut self, _nt: NtId) {}
    /// A memo-table query on a memoizable rule.
    #[inline(always)]
    fn memo(&mut self, _nt: NtId, _hit: bool) {}
    /// A frame (or leaf bracket) was entered for `nt`.
    #[inline(always)]
    fn enter(&mut self, _nt: NtId) {}
    /// The frame/bracket for `nt` finished, successfully or not.
    #[inline(always)]
    fn exit(&mut self, _nt: NtId, _ok: bool) {}
    /// One instruction dispatched at `pc`.
    #[inline(always)]
    fn instr(&mut self, _pc: u32) {}
    /// A streaming suspension taken while blocked at `pc`.
    #[inline(always)]
    fn suspend(&mut self, _pc: u32) {}
}

/// The disabled sink: all hooks are empty and inline to nothing.
impl ProfSink for () {}

/// Raw per-rule counters accumulated by a [`Profiler`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RuleCounters {
    /// Invocations (including memo hits and leaf rules).
    pub calls: u64,
    /// Memo-table hits.
    pub memo_hits: u64,
    /// Memo-table misses (memoizable rules only).
    pub memo_misses: u64,
    /// Frames that completed with a parse tree.
    pub completions: u64,
    /// Frames that exhausted their alternatives (or leaf failures).
    pub failures: u64,
    /// Wall-clock nanoseconds attributed to this rule's own work.
    pub self_ns: u64,
}

/// The enabled [`ProfSink`]: accumulates counters during one parse.
/// Create per parse via [`crate::interp::vm::VmParser::parse_profiled`].
#[derive(Debug)]
pub struct Profiler {
    started: Instant,
    last: Instant,
    stack: Vec<NtId>,
    rules: Vec<RuleCounters>,
    instr_hits: Vec<u64>,
    suspend_hits: Vec<u64>,
    unattributed_ns: u64,
}

impl Profiler {
    /// A fresh profiler sized for a program with `rules` rules and
    /// `instrs` instructions.
    pub fn new(rules: usize, instrs: usize) -> Profiler {
        let now = Instant::now();
        Profiler {
            started: now,
            last: now,
            stack: Vec::with_capacity(32),
            rules: vec![RuleCounters::default(); rules],
            instr_hits: vec![0; instrs],
            suspend_hits: vec![0; instrs],
            unattributed_ns: 0,
        }
    }

    /// Charges the time since the previous boundary to the rule on top
    /// of the profiler stack (or to the unattributed bucket).
    #[inline]
    fn flush(&mut self) {
        let now = Instant::now();
        let dt = now.duration_since(self.last).as_nanos() as u64;
        self.last = now;
        match self.stack.last() {
            Some(nt) => self.rules[nt.0 as usize].self_ns += dt,
            None => self.unattributed_ns += dt,
        }
    }
}

impl ProfSink for &mut Profiler {
    #[inline]
    fn call(&mut self, nt: NtId) {
        self.rules[nt.0 as usize].calls += 1;
    }

    #[inline]
    fn memo(&mut self, nt: NtId, hit: bool) {
        let c = &mut self.rules[nt.0 as usize];
        if hit {
            c.memo_hits += 1;
        } else {
            c.memo_misses += 1;
        }
    }

    #[inline]
    fn enter(&mut self, nt: NtId) {
        self.flush();
        self.stack.push(nt);
    }

    #[inline]
    fn exit(&mut self, nt: NtId, ok: bool) {
        self.flush();
        self.stack.pop();
        let c = &mut self.rules[nt.0 as usize];
        if ok {
            c.completions += 1;
        } else {
            c.failures += 1;
        }
    }

    #[inline]
    fn instr(&mut self, pc: u32) {
        self.instr_hits[pc as usize] += 1;
    }

    #[inline]
    fn suspend(&mut self, pc: u32) {
        self.suspend_hits[pc as usize] += 1;
    }
}

/// One rule's aggregated profile.
#[derive(Clone, Debug)]
pub struct RuleProfile {
    /// The rule's nonterminal id in the compiled program.
    pub nt: NtId,
    /// The rule's grammar name.
    pub name: String,
    /// Raw counters.
    pub counters: RuleCounters,
    /// Self time as a fraction of total attributed time, in percent.
    pub self_pct: f64,
}

/// The aggregated result of one profiled parse.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// Per-rule profiles, sorted by self time, hottest first. Rules
    /// that were never invoked are omitted.
    pub rules: Vec<RuleProfile>,
    /// Total wall-clock nanoseconds of the profiled parse.
    pub total_ns: u64,
    /// Nanoseconds spent outside any rule (session setup/teardown).
    pub unattributed_ns: u64,
    /// Instruction hit counts, indexed by pc.
    pub instr_hits: Vec<u64>,
    /// Streaming suspension counts, indexed by the blocked pc.
    pub suspend_hits: Vec<u64>,
    /// Folded stacks: (`root;...;rule`, self nanoseconds).
    folded: Vec<(String, u64)>,
}

impl ProfileReport {
    /// Aggregates a finished [`Profiler`] against the program it ran.
    pub(crate) fn build(g: &Grammar, p: &Program, mut prof: Profiler) -> ProfileReport {
        prof.flush(); // charge the tail (root exit → now)
        let total_ns = prof.started.elapsed().as_nanos() as u64;
        let paths = static_paths(p);
        let mut rules: Vec<RuleProfile> = prof
            .rules
            .iter()
            .enumerate()
            .filter(|(_, c)| c.calls > 0)
            .map(|(i, c)| {
                let nt = NtId(i as u32);
                RuleProfile {
                    nt,
                    name: g.nt_name(nt).to_owned(),
                    counters: *c,
                    self_pct: if total_ns == 0 {
                        0.0
                    } else {
                        100.0 * c.self_ns as f64 / total_ns as f64
                    },
                }
            })
            .collect();
        rules.sort_by(|a, b| {
            b.counters.self_ns.cmp(&a.counters.self_ns).then_with(|| a.nt.0.cmp(&b.nt.0))
        });
        let mut folded: Vec<(String, u64)> = rules
            .iter()
            .map(|r| {
                let path = match &paths[r.nt.0 as usize] {
                    Some(chain) => {
                        let names: Vec<&str> = chain.iter().map(|nt| g.nt_name(*nt)).collect();
                        names.join(";")
                    }
                    None => r.name.clone(),
                };
                (path, r.counters.self_ns)
            })
            .collect();
        folded.sort();
        ProfileReport {
            rules,
            total_ns,
            unattributed_ns: prof.unattributed_ns,
            instr_hits: prof.instr_hits,
            suspend_hits: prof.suspend_hits,
            folded,
        }
    }

    /// The `n` hottest rules by self time.
    pub fn top(&self, n: usize) -> &[RuleProfile] {
        &self.rules[..n.min(self.rules.len())]
    }

    /// Total suspensions recorded across all instructions.
    pub fn suspends(&self) -> u64 {
        self.suspend_hits.iter().sum()
    }

    /// The per-rule table: one aligned text row per invoked rule, plus
    /// a totals footer.
    pub fn table(&self) -> String {
        let name_w = self.rules.iter().map(|r| r.name.len()).max().unwrap_or(4).max("TOTAL".len());
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:name_w$}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>12}  {:>6}",
            "rule", "calls", "memo-hit", "memo-miss", "ok", "fail", "self-us", "self%"
        );
        let mut tot = RuleCounters::default();
        for r in &self.rules {
            let c = r.counters;
            let _ = writeln!(
                out,
                "{:name_w$}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>12.1}  {:>5.1}%",
                r.name,
                c.calls,
                c.memo_hits,
                c.memo_misses,
                c.completions,
                c.failures,
                c.self_ns as f64 / 1000.0,
                r.self_pct,
            );
            tot.calls += c.calls;
            tot.memo_hits += c.memo_hits;
            tot.memo_misses += c.memo_misses;
            tot.completions += c.completions;
            tot.failures += c.failures;
            tot.self_ns += c.self_ns;
        }
        let _ = writeln!(
            out,
            "{:name_w$}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>12.1}  {:>5.1}%",
            "TOTAL",
            tot.calls,
            tot.memo_hits,
            tot.memo_misses,
            tot.completions,
            tot.failures,
            tot.self_ns as f64 / 1000.0,
            if self.total_ns == 0 {
                0.0
            } else {
                100.0 * tot.self_ns as f64 / self.total_ns as f64
            },
        );
        out
    }

    /// Folded-stack text (`root;...;rule <self-ns>` per line), suitable
    /// for `flamegraph.pl` / speedscope. Paths follow the grammar's
    /// static call graph (see the module docs).
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (path, ns) in &self.folded {
            let _ = writeln!(out, "{path} {ns}");
        }
        out
    }
}

/// For every rule, the shortest static call path from the start rule
/// (inclusive of both endpoints), or `None` if unreachable from the
/// start by static edges.
fn static_paths(p: &Program) -> Vec<Option<Vec<NtId>>> {
    let n = p.rules.len();
    let mut parent: Vec<u32> = vec![u32::MAX; n];
    let mut seen = vec![false; n];
    let start = p.start.0 as usize;
    seen[start] = true;
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(nt) = queue.pop_front() {
        let mut visit = |callee: NtId, queue: &mut std::collections::VecDeque<usize>| {
            let c = callee.0 as usize;
            if !seen[c] {
                seen[c] = true;
                parent[c] = nt as u32;
                queue.push_back(c);
            }
        };
        if let PRuleKind::Alts { first, count } = p.rules[nt].kind {
            for alt in &p.alts[first as usize..(first + count) as usize] {
                for instr in &p.code[alt.first as usize..(alt.first + alt.count) as usize] {
                    match *instr {
                        Instr::Call { nt: c, .. }
                        | Instr::Loop { nt: c, .. }
                        | Instr::Star { nt: c, .. } => visit(c, &mut queue),
                        Instr::Switch { first, count, .. } => {
                            for case in &p.cases[first as usize..(first + count as u32) as usize] {
                                visit(case.nt, &mut queue);
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    (0..n)
        .map(|i| {
            if !seen[i] {
                return None;
            }
            let mut chain = vec![NtId(i as u32)];
            let mut cur = i;
            while parent[cur] != u32::MAX {
                cur = parent[cur] as usize;
                chain.push(NtId(cur as u32));
            }
            chain.reverse();
            Some(chain)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::frontend::parse_grammar;
    use crate::interp::vm::VmParser;

    const FIG2: &str = r#"
        S -> H[0, 8] Data[H.offset, H.offset + H.length];
        H -> Int[0, 4] {offset = Int.val} Int[4, 8] {length = Int.val};
        Int := u32le;
        Data := bytes;
    "#;

    fn fig2_input() -> Vec<u8> {
        let mut input = vec![8u8, 0, 0, 0, 4, 0, 0, 0];
        input.extend_from_slice(b"DATA");
        input
    }

    #[test]
    fn profiled_parse_matches_unprofiled_and_counts_rules() {
        let g = parse_grammar(FIG2).unwrap();
        let vm = VmParser::new(&g);
        let input = fig2_input();
        let plain = vm.parse(&input).unwrap();
        let (tree, stats, report) = vm.parse_profiled(&input);
        let tree = tree.unwrap();
        assert_eq!(tree.root().to_tree(), plain.root().to_tree());
        assert!(stats.steps > 0);

        // Every rule fired: S and H once, Int twice, Data once.
        let by_name = |n: &str| {
            report.rules.iter().find(|r| r.name == n).unwrap_or_else(|| panic!("rule {n}"))
        };
        assert_eq!(by_name("S").counters.calls, 1);
        assert_eq!(by_name("S").counters.completions, 1);
        assert_eq!(by_name("H").counters.calls, 1);
        assert_eq!(by_name("Int").counters.calls, 2);
        assert_eq!(by_name("Data").counters.calls, 1);

        // Instruction hits: at least one pc fired, none exceed steps.
        assert!(report.instr_hits.iter().any(|&h| h > 0));
        assert!(report.instr_hits.iter().sum::<u64>() <= stats.steps);
    }

    #[test]
    fn table_and_folded_are_well_formed() {
        let g = parse_grammar(FIG2).unwrap();
        let vm = VmParser::new(&g);
        let (tree, _, report) = vm.parse_profiled(&fig2_input());
        tree.unwrap();

        let table = report.table();
        assert!(table.contains("rule"), "{table}");
        assert!(table.contains("TOTAL"), "{table}");
        assert!(table.contains('S'), "{table}");

        // Folded paths follow the static call graph from the start rule.
        let folded = report.folded();
        let mut paths: Vec<&str> = folded.lines().map(|l| l.rsplit_once(' ').unwrap().0).collect();
        paths.sort();
        assert_eq!(paths, vec!["S", "S;Data", "S;H", "S;H;Int"]);
        for line in folded.lines() {
            let (_, v) = line.rsplit_once(' ').unwrap();
            v.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn failures_and_memo_hits_are_attributed() {
        let g = parse_grammar(
            r#"
            S -> A[0, EOI] B[0, EOI] / A[0, EOI];
            A -> "ab"[0, 2];
            B -> "zz"[0, 2];
            "#,
        )
        .unwrap();
        let vm = VmParser::new(&g);
        let (tree, _, report) = vm.parse_profiled(b"ab");
        tree.unwrap();
        let a = report.rules.iter().find(|r| r.name == "A").unwrap();
        // A is called in both alternatives at the same interval: one
        // real completion, one memo hit.
        assert_eq!(a.counters.calls, 2);
        assert_eq!(a.counters.completions, 1);
        assert_eq!(a.counters.memo_hits, 1);
        let b = report.rules.iter().find(|r| r.name == "B").unwrap();
        assert_eq!(b.counters.failures, 1);
    }
}
