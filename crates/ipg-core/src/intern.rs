//! A tiny string interner.
//!
//! Grammars refer to nonterminals and attributes by name; the checker,
//! interpreter and code generator refer to them by dense integer ids so that
//! environments can be flat vectors instead of hash maps. One [`Interner`]
//! instance lives inside every [`crate::Grammar`].

use std::collections::HashMap;
use std::fmt;

/// An interned symbol (attribute name, loop variable, …).
///
/// `Sym`s are only meaningful relative to the [`Interner`] that produced
/// them; comparing symbols from different interners is a logic error (but
/// not unsafe).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({})", self.0)
    }
}

/// Interns strings, handing out dense [`Sym`] ids.
#[derive(Clone, Debug, Default)]
pub struct Interner {
    names: Vec<String>,
    by_name: HashMap<String, Sym>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its symbol. Idempotent.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.by_name.get(name) {
            return s;
        }
        let s = Sym(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), s);
        s
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<Sym> {
        self.by_name.get(name).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.0 as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no string has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("offset");
        let b = i.intern("offset");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_syms() {
        let mut i = Interner::new();
        let a = i.intern("offset");
        let b = i.intern("length");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "offset");
        assert_eq!(i.resolve(b), "length");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("x").is_none());
        i.intern("x");
        assert!(i.get("x").is_some());
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
