//! Parse trees.
//!
//! `Tr ::= Node(A, E, Tr…) | Array(Tr…) | Leaf(s)` from §3.3 of the paper,
//! extended with a `Blackbox` leaf carrying the decoded output of an opaque
//! external parser.
//!
//! Subtrees are reference-counted so that the memoizing interpreter can
//! reuse a cached result in several places without deep copies (the paper's
//! O(n²) memoization argument relies on exactly this sharing).

use crate::check::NtId;
use crate::env::Env;
use crate::intern::Sym;
use std::rc::Rc;
use std::sync::Arc;

/// A parse tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Tree {
    /// A nonterminal node: root `nt`, attribute environment, children in
    /// (reordered) term order.
    Node(Node),
    /// The result of an array term: one child per loop iteration.
    Array(ArrayNode),
    /// A matched terminal string, identified by its absolute input span.
    Leaf(Leaf),
    /// The result of a blackbox rule.
    Blackbox(BlackboxNode),
}

/// A nonterminal parse-tree node.
#[derive(Clone, Debug, PartialEq)]
pub struct Node {
    /// The nonterminal this node was parsed with.
    pub nt: NtId,
    /// The nonterminal's name (kept on the node so extractors need not
    /// carry the grammar around).
    pub name: Arc<str>,
    /// The name as an interned symbol ([`crate::check::Grammar::nt_name_sym`]);
    /// lets child lookups compare `u32`s instead of strings.
    pub name_sym: Sym,
    /// Attribute environment: user attributes plus `start`/`end`/`EOI`.
    /// `start`/`end` are relative to the node's *parent* input after the
    /// caller-side adjustment of rule T-NTSucc.
    pub env: Env,
    /// Children, one per terminal/nonterminal/array/switch/blackbox term of
    /// the successful alternative (attribute definitions and predicates
    /// produce no child).
    pub children: Vec<Rc<Tree>>,
    /// Absolute input offset of this node's local input slice.
    pub base: usize,
    /// Length of this node's local input slice (`EOI`).
    pub input_len: usize,
    /// Index of the alternative that succeeded (0-based).
    pub alt_index: usize,
}

/// The result of an array term.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayNode {
    /// Element nonterminal.
    pub nt: NtId,
    /// Element nonterminal name.
    pub name: Arc<str>,
    /// The element name as an interned symbol.
    pub name_sym: Sym,
    /// One element per iteration, each a [`Tree::Node`].
    pub elems: Vec<Rc<Tree>>,
}

/// A matched terminal string.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Leaf {
    /// Absolute offset of the first matched byte.
    pub start: usize,
    /// Absolute offset one past the last matched byte (equal to `start`
    /// for ε).
    pub end: usize,
}

/// The result of a blackbox rule.
#[derive(Clone, Debug, PartialEq)]
pub struct BlackboxNode {
    /// The nonterminal whose rule is the blackbox.
    pub nt: NtId,
    /// Its name.
    pub name: Arc<str>,
    /// The name as an interned symbol.
    pub name_sym: Sym,
    /// Attribute environment (declared attributes plus `start`/`end`/`EOI`).
    pub env: Env,
    /// Decoded output (e.g. decompressed bytes).
    pub data: Arc<[u8]>,
    /// Absolute offset of the blackbox's local input slice.
    pub base: usize,
    /// Length of the local input slice.
    pub input_len: usize,
}

impl Tree {
    /// This tree as a nonterminal node, if it is one.
    pub fn as_node(&self) -> Option<&Node> {
        match self {
            Tree::Node(n) => Some(n),
            _ => None,
        }
    }

    /// This tree as an array, if it is one.
    pub fn as_array(&self) -> Option<&ArrayNode> {
        match self {
            Tree::Array(a) => Some(a),
            _ => None,
        }
    }

    /// This tree as a terminal leaf, if it is one.
    pub fn as_leaf(&self) -> Option<&Leaf> {
        match self {
            Tree::Leaf(l) => Some(l),
            _ => None,
        }
    }

    /// This tree as a blackbox node, if it is one.
    pub fn as_blackbox(&self) -> Option<&BlackboxNode> {
        match self {
            Tree::Blackbox(b) => Some(b),
            _ => None,
        }
    }

    /// The first direct child whose interned name symbol is `sym`
    /// (resolve a name once via [`crate::check::Grammar::nt_sym`]).
    pub fn child_node_sym(&self, sym: Sym) -> Option<&Node> {
        self.as_node()?.child_node_sym(sym)
    }

    /// The first direct child array whose element name symbol is `sym`.
    pub fn child_array_sym(&self, sym: Sym) -> Option<&ArrayNode> {
        self.as_node()?.child_array_sym(sym)
    }

    /// The first direct blackbox child whose name symbol is `sym`.
    pub fn child_blackbox_sym(&self, sym: Sym) -> Option<&BlackboxNode> {
        self.as_node()?.child_blackbox_sym(sym)
    }

    /// Total number of tree nodes (for tests and statistics).
    pub fn size(&self) -> usize {
        match self {
            Tree::Node(n) => 1 + n.children.iter().map(|c| c.size()).sum::<usize>(),
            Tree::Array(a) => 1 + a.elems.iter().map(|c| c.size()).sum::<usize>(),
            Tree::Leaf(_) | Tree::Blackbox(_) => 1,
        }
    }
}

impl Node {
    /// Looks up a user attribute by name (requires the grammar for symbol
    /// resolution).
    pub fn attr(&self, grammar: &crate::check::Grammar, name: &str) -> Option<i64> {
        let sym = grammar.attr_sym(name)?;
        self.env.get(sym)
    }

    /// Looks up an attribute by pre-resolved symbol (fast path for
    /// extractors in hot loops).
    pub fn attr_by_sym(&self, sym: Sym) -> Option<i64> {
        self.env.get(sym)
    }

    /// The node's `start` special attribute (relative to the parent's
    /// input), i.e. the left-most offset its parsing touched.
    pub fn touched_start(&self) -> i64 {
        self.env.start()
    }

    /// The node's `end` special attribute.
    pub fn touched_end(&self) -> i64 {
        self.env.end()
    }

    /// The first direct child whose interned name symbol is `sym`
    /// (resolve a name once via [`crate::check::Grammar::nt_sym`];
    /// symbol comparison keeps lookups in hot extractor loops cheap).
    pub fn child_node_sym(&self, sym: Sym) -> Option<&Node> {
        self.children.iter().find_map(|c| match c.as_ref() {
            Tree::Node(child) if child.name_sym == sym => Some(child),
            _ => None,
        })
    }

    /// The first direct child array whose element name symbol is `sym`.
    pub fn child_array_sym(&self, sym: Sym) -> Option<&ArrayNode> {
        self.children.iter().find_map(|c| match c.as_ref() {
            Tree::Array(a) if a.name_sym == sym => Some(a),
            _ => None,
        })
    }

    /// The first direct blackbox child whose name symbol is `sym`.
    pub fn child_blackbox_sym(&self, sym: Sym) -> Option<&BlackboxNode> {
        self.children.iter().find_map(|c| match c.as_ref() {
            Tree::Blackbox(b) if b.name_sym == sym => Some(b),
            _ => None,
        })
    }

    /// The absolute input span `[base, base + input_len)` this node was
    /// asked to describe.
    pub fn span(&self) -> (usize, usize) {
        (self.base, self.base + self.input_len)
    }
}

impl ArrayNode {
    /// Element `i` as a node.
    pub fn node(&self, i: usize) -> Option<&Node> {
        self.elems.get(i).and_then(|t| t.as_node())
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Iterates over elements as nodes (skipping nothing: array elements
    /// are always nodes).
    pub fn nodes(&self) -> impl Iterator<Item = &Node> + '_ {
        self.elems.iter().filter_map(|t| t.as_node())
    }
}

impl Leaf {
    /// The matched bytes within `input`.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not the buffer this leaf was parsed from (span
    /// out of bounds).
    pub fn bytes<'a>(&self, input: &'a [u8]) -> &'a [u8] {
        &input[self.start..self.end]
    }

    /// Length of the matched terminal.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the match was the empty string.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(start: usize, end: usize) -> Rc<Tree> {
        Rc::new(Tree::Leaf(Leaf { start, end }))
    }

    #[test]
    fn leaf_bytes_slice_the_input() {
        let l = Leaf { start: 2, end: 5 };
        assert_eq!(l.bytes(b"..abc.."), b"abc");
        assert_eq!(l.len(), 3);
        assert!(!l.is_empty());
        assert!(Leaf { start: 4, end: 4 }.is_empty());
    }

    #[test]
    fn tree_size_counts_all_nodes() {
        let node = Tree::Node(Node {
            nt: NtId(0),
            name: "S".into(),
            name_sym: Sym(10),
            env: Env::new(),
            children: vec![
                leaf(0, 1),
                Rc::new(Tree::Array(ArrayNode {
                    nt: NtId(1),
                    name: "A".into(),
                    name_sym: Sym(11),
                    elems: vec![],
                })),
            ],
            base: 0,
            input_len: 1,
            alt_index: 0,
        });
        assert_eq!(node.size(), 3);
    }

    #[test]
    fn child_lookup_by_sym() {
        let child = Node {
            nt: NtId(1),
            name: "H".into(),
            name_sym: Sym(11),
            env: Env::new(),
            children: vec![],
            base: 0,
            input_len: 8,
            alt_index: 0,
        };
        let root = Tree::Node(Node {
            nt: NtId(0),
            name: "S".into(),
            name_sym: Sym(10),
            env: Env::new(),
            children: vec![Rc::new(Tree::Node(child))],
            base: 0,
            input_len: 12,
            alt_index: 0,
        });
        assert!(root.child_node_sym(Sym(11)).is_some());
        assert!(root.child_node_sym(Sym(12)).is_none());
        assert!(root.child_array_sym(Sym(11)).is_none());
        assert!(root.child_blackbox_sym(Sym(11)).is_none());
    }
}
