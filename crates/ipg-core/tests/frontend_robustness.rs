//! The frontend must reject, never panic on, malformed grammar text — the
//! same robustness the generated parsers must show on malformed input.

use ipg_core::frontend::{parse_grammar, parse_surface};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_text_never_panics(src in "\\PC{0,200}") {
        let _ = parse_surface(&src);
        let _ = parse_grammar(&src);
    }

    #[test]
    fn arbitrary_bytes_as_latin1_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let src: String = bytes.iter().map(|&b| b as char).collect();
        let _ = parse_grammar(&src);
    }

    /// Mutating a valid grammar's text produces either a valid grammar or a
    /// clean error — never a panic.
    #[test]
    fn mutated_valid_grammar_never_panics(idx_frac in 0.0f64..1.0, ch in any::<char>()) {
        let base = r#"
            S -> H[0, 8] Data[H.offset, H.offset + H.length] assert(H.offset > 0);
            H -> Int[0, 4] {offset = Int.val} Int[4, 8] {length = Int.val};
            Int := u32le;
            Data := bytes;
        "#;
        let mut chars: Vec<char> = base.chars().collect();
        let idx = ((chars.len() - 1) as f64 * idx_frac) as usize;
        chars[idx] = ch;
        let mutated: String = chars.into_iter().collect();
        let _ = parse_grammar(&mutated);
    }
}

#[test]
fn error_messages_carry_positions() {
    let cases = [
        ("S -> [0, 1];", "expected"),
        ("S -> A[0 1];", "expected"),
        ("S -> A[0, 1]", "expected"), // missing semicolon
        ("S := not_a_builtin;", "unknown builtin"),
        ("S -> \"unterminated", "unterminated"),
        ("S -> A[0, (1];", "expected"),
        ("-> A;", "expected"),
        ("S -> {x = };", "expected expression"),
        ("S -> for i = 0 do A[0, 1];", "expected `to`"),
        ("S -> switch();", "expected"),
    ];
    for (src, needle) in cases {
        let err = parse_surface(src).expect_err(src).to_string();
        assert!(
            err.to_lowercase().contains(needle),
            "source {src:?} produced error {err:?}, expected to contain {needle:?}"
        );
        assert!(err.contains("syntax error at") || err.contains("grammar"), "{err}");
    }
}

#[test]
fn deeply_nested_expressions_are_bounded() {
    // Moderate nesting parses fine…
    let mut expr = String::from("1");
    for _ in 0..100 {
        expr = format!("({expr})");
    }
    let src = format!("S -> {{x = {expr}}} \"\"[0, 0];");
    assert!(parse_grammar(&src).is_ok());

    // …but pathological nesting is rejected with a clean error (instead of
    // exhausting the stack somewhere in a later recursive pass).
    let mut expr = String::from("1");
    for _ in 0..10_000 {
        expr = format!("({expr})");
    }
    let src = format!("S -> {{x = {expr}}} \"\"[0, 0];");
    let err = parse_grammar(&src).unwrap_err().to_string();
    assert!(err.contains("nesting"), "got: {err}");
}

#[test]
fn duplicate_and_missing_rules_are_clean_errors() {
    assert!(parse_grammar("S -> A[0, 1]; S -> \"x\"[0, 1]; A := u8;")
        .unwrap_err()
        .to_string()
        .contains("duplicate"));
    assert!(parse_grammar("S -> Ghost[0, 1];").unwrap_err().to_string().contains("Ghost"));
    assert!(parse_grammar("start Nope; S -> \"x\"[0, 1];")
        .unwrap_err()
        .to_string()
        .contains("Nope"));
}
