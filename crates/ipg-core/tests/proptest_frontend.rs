//! Property tests for the textual frontend: pretty-printing a random
//! surface grammar and reparsing it must be a fixpoint (`print ∘ parse ∘
//! print = print`), and checked grammars must re-check after a roundtrip.

use ipg_core::frontend::parse_surface;
use ipg_core::syntax::{
    Alternative, Builtin, Expr, Grammar, Interval, Rule, RuleBody, SwitchCase, Term,
};
use proptest::prelude::*;

const NT_POOL: [&str; 4] = ["Aa", "Bb", "Cc", "Dd"];
const ATTR_POOL: [&str; 3] = ["x1", "y2", "z3"];

fn nt_name() -> impl Strategy<Value = String> {
    prop::sample::select(NT_POOL.to_vec()).prop_map(str::to_owned)
}

fn attr_name() -> impl Strategy<Value = String> {
    prop::sample::select(ATTR_POOL.to_vec()).prop_map(str::to_owned)
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(Expr::Num),
        Just(Expr::eoi()),
        attr_name().prop_map(|a| Expr::local(&a)),
        (nt_name(), attr_name()).prop_map(|(n, a)| Expr::attr(&n, &a)),
        (nt_name(), attr_name()).prop_map(|(n, a)| Expr::elem(&n, Expr::local("i"), &a)),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a / b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.rem(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.eq(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.lt(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.shl(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.bitand(b)),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| c.cond(t, e)),
        ]
    })
}

fn interval() -> impl Strategy<Value = Interval> {
    (expr(), expr()).prop_map(|(lo, hi)| Interval::new(lo, hi))
}

fn terminal_bytes() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..6),
        "[a-zA-Z0-9 .!-]{0,8}".prop_map(|s| s.into_bytes()),
    ]
}

fn term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (nt_name(), interval()).prop_map(|(name, interval)| Term::Symbol { name, interval }),
        (terminal_bytes(), interval())
            .prop_map(|(bytes, interval)| Term::Terminal { bytes, interval }),
        (attr_name(), expr()).prop_map(|(name, expr)| Term::AttrDef { name, expr }),
        expr().prop_map(|expr| Term::Predicate { expr }),
        (expr(), expr(), nt_name(), interval()).prop_map(|(from, to, name, interval)| {
            Term::Array { var: "i".to_owned(), from, to, name, interval }
        }),
        (nt_name(), interval()).prop_map(|(name, interval)| Term::Star { name, interval }),
        (prop::collection::vec((expr(), nt_name(), interval()), 1..3), nt_name(), interval())
            .prop_map(|(cases, dname, dinterval)| Term::Switch {
                cases: cases
                    .into_iter()
                    .map(|(cond, name, interval)| SwitchCase { cond: Some(cond), name, interval })
                    .collect(),
                default: Box::new(SwitchCase { cond: None, name: dname, interval: dinterval }),
            }),
    ]
}

fn grammar() -> impl Strategy<Value = Grammar> {
    // One rule per pool nonterminal so every reference has a target; the
    // last two become builtins for variety.
    (
        prop::collection::vec(prop::collection::vec(term(), 0..4), 1..3),
        prop::collection::vec(prop::collection::vec(term(), 0..4), 1..3),
        prop::sample::select(vec![Builtin::U8, Builtin::U32Le, Builtin::AsciiInt, Builtin::Bytes]),
    )
        .prop_map(|(alts_a, alts_b, b)| Grammar {
            rules: vec![
                Rule {
                    name: "Aa".into(),
                    body: RuleBody::Alts(
                        alts_a.into_iter().map(|terms| Alternative { terms }).collect(),
                    ),
                    is_local: false,
                },
                Rule {
                    name: "Bb".into(),
                    body: RuleBody::Alts(
                        alts_b.into_iter().map(|terms| Alternative { terms }).collect(),
                    ),
                    is_local: true,
                },
                Rule { name: "Cc".into(), body: RuleBody::Builtin(b), is_local: false },
                Rule {
                    name: "Dd".into(),
                    body: RuleBody::Builtin(Builtin::U16Be),
                    is_local: false,
                },
            ],
            start: Some("Aa".into()),
            blackboxes: vec![],
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `print ∘ parse ∘ print = print` on arbitrary surface grammars.
    #[test]
    fn display_reparse_is_a_fixpoint(g in grammar()) {
        let printed = g.to_string();
        let reparsed = parse_surface(&printed)
            .unwrap_or_else(|e| panic!("own output failed to reparse: {e}\n{printed}"));
        prop_assert_eq!(printed, reparsed.to_string());
    }

    /// Expressions alone roundtrip through the notation.
    #[test]
    fn expr_display_reparses(e in expr()) {
        let src = format!("Aa -> {{x1 = {e}}} \"\"[0, 0];");
        let g = parse_surface(&src)
            .unwrap_or_else(|err| panic!("expr failed to reparse: {err}\n{src}"));
        let printed = g.to_string();
        let again = parse_surface(&printed).expect("second parse");
        prop_assert_eq!(printed, again.to_string());
    }

    /// Checked grammars survive the textual roundtrip: if a random grammar
    /// happens to pass attribute checking, its printed form must pass too.
    #[test]
    fn checking_is_stable_under_roundtrip(g in grammar()) {
        let printed = g.to_string();
        let first = ipg_core::check::check(g);
        let reparsed = parse_surface(&printed).expect("own output reparses");
        let second = ipg_core::check::check(reparsed);
        prop_assert_eq!(first.is_ok(), second.is_ok(), "checking verdict changed:\n{}", printed);
    }
}
