//! Property tests for the solver's exact rational arithmetic and linear
//! expressions — the substrate of both the §5 termination checker and the
//! grammar-driven input generator's constraint solving. The laws below must
//! hold without overflow for "corpus-sized" magnitudes (interval endpoints
//! up to 2^40, i.e. terabyte-scale inputs, with denominators from realistic
//! coefficient chains).

use ipg_core::solver::{LinExpr, Rat, System, Var};
use proptest::prelude::*;

/// Corpus-sized numerators: interval arithmetic over inputs up to ~1 TiB,
/// squared once by a cross-multiplication, still fits i128 comfortably.
fn num() -> impl Strategy<Value = i64> {
    (-(1i64 << 40)..(1i64 << 40)).prop_map(|n| n)
}

/// Small non-zero denominators (coefficients in real grammars are
/// element sizes: 16, 24, 64, …).
fn den() -> impl Strategy<Value = i64> {
    (1i64..10_000).prop_map(|d| d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ------------------------------------------------------------------
    // Rat: field laws.
    // ------------------------------------------------------------------

    #[test]
    fn rat_add_commutes(a in num(), b in den(), c in num(), d in den()) {
        let (x, y) = (Rat::new(a as i128, b as i128), Rat::new(c as i128, d as i128));
        prop_assert_eq!(x + y, y + x);
    }

    #[test]
    fn rat_mul_commutes(a in num(), b in den(), c in num(), d in den()) {
        let (x, y) = (Rat::new(a as i128, b as i128), Rat::new(c as i128, d as i128));
        prop_assert_eq!(x * y, y * x);
    }

    #[test]
    fn rat_add_associates(a in num(), c in num(), e in num(), b in den(), d in den(), f in den()) {
        let x = Rat::new(a as i128, b as i128);
        let y = Rat::new(c as i128, d as i128);
        let z = Rat::new(e as i128, f as i128);
        prop_assert_eq!((x + y) + z, x + (y + z));
    }

    #[test]
    fn rat_mul_distributes_over_add(a in num(), c in num(), e in num(), b in den(), d in den()) {
        let x = Rat::new(a as i128, b as i128);
        let y = Rat::new(c as i128, d as i128);
        let z = Rat::from(e);
        prop_assert_eq!(z * (x + y), z * x + z * y);
    }

    #[test]
    fn rat_sub_is_add_inverse(a in num(), b in den(), c in num(), d in den()) {
        let (x, y) = (Rat::new(a as i128, b as i128), Rat::new(c as i128, d as i128));
        prop_assert_eq!((x - y) + y, x);
        prop_assert!((x - x).is_zero());
    }

    #[test]
    fn rat_recip_inverts(a in num(), b in den()) {
        let a = if a == 0 { 1 } else { a }; // recip needs a non-zero value
        let x = Rat::new(a as i128, b as i128);
        prop_assert_eq!(x * x.recip(), Rat::from(1));
    }

    // ------------------------------------------------------------------
    // Rat: ordering laws.
    // ------------------------------------------------------------------

    #[test]
    fn rat_ordering_is_total_and_antisymmetric(a in num(), b in den(), c in num(), d in den()) {
        let (x, y) = (Rat::new(a as i128, b as i128), Rat::new(c as i128, d as i128));
        // Exactly one of <, =, > holds.
        let rels = [x < y, x == y, x > y];
        prop_assert_eq!(rels.iter().filter(|&&r| r).count(), 1);
        prop_assert_eq!(x.cmp(&y).reverse(), y.cmp(&x));
    }

    #[test]
    fn rat_ordering_respects_addition(a in num(), c in num(), e in num(), b in den(), d in den(), f in den()) {
        let x = Rat::new(a as i128, b as i128);
        let y = Rat::new(c as i128, d as i128);
        let z = Rat::new(e as i128, f as i128);
        prop_assert_eq!(x < y, x + z < y + z);
    }

    #[test]
    fn rat_normalization_is_canonical(a in num(), b in den(), k in 1i64..1000) {
        // Scaling numerator and denominator by k must not change the value.
        let x = Rat::new(a as i128, b as i128);
        let y = Rat::new(a as i128 * k as i128, b as i128 * k as i128);
        prop_assert_eq!(x, y);
        prop_assert!(y.denom() > 0);
    }

    #[test]
    fn rat_as_i64_roundtrips_integers(a in num()) {
        prop_assert_eq!(Rat::from(a).as_i64(), Some(a));
        // A strict fraction is never an integer.
        prop_assert_eq!(Rat::new(2 * a as i128 + 1, 2).as_i64(), None);
    }

    // ------------------------------------------------------------------
    // LinExpr: module laws over corpus-sized coefficients.
    // ------------------------------------------------------------------

    #[test]
    fn linexpr_add_sub_roundtrip(a in num(), b in num(), k in num()) {
        let e = LinExpr::var(Var(0)).scale(Rat::from(a))
            .add(&LinExpr::var(Var(1)).scale(Rat::from(b)))
            .add(&LinExpr::constant(k));
        let zero = e.sub(&e);
        prop_assert!(zero.is_constant());
        prop_assert!(zero.constant_term().is_zero());
        prop_assert_eq!(e.add(&e), e.scale(Rat::from(2)));
    }

    #[test]
    fn linexpr_eval_is_linear(a in num(), b in num(), x in num(), y in num()) {
        let e = LinExpr::var(Var(0)).scale(Rat::from(a))
            .add(&LinExpr::var(Var(1)).scale(Rat::from(b)));
        let assign = |v: Var| Some(Rat::from(if v == Var(0) { x } else { y }));
        let got = e.eval_with(assign).expect("fully assigned");
        let want = Rat::from(a) * Rat::from(x) + Rat::from(b) * Rat::from(y);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn linexpr_substitute_then_eval_agrees(a in num(), b in num(), x in num(), y in num()) {
        let e = LinExpr::var(Var(0)).scale(Rat::from(a))
            .add(&LinExpr::var(Var(1)).scale(Rat::from(b)));
        // Substitute x for v0 only; the residual mentions v1 alone.
        let partial = e.substitute(|v| (v == Var(0)).then(|| Rat::from(x)));
        prop_assert_eq!(partial.var_count(), usize::from(b != 0));
        let full = partial.eval_with(|_| Some(Rat::from(y))).expect("v1 assigned");
        let want = Rat::from(a) * Rat::from(x) + Rat::from(b) * Rat::from(y);
        prop_assert_eq!(full, want);
    }

    // ------------------------------------------------------------------
    // System: sanity of satisfiability under corpus-sized bounds.
    // ------------------------------------------------------------------

    #[test]
    fn point_solutions_are_satisfiable(x in num(), y in num()) {
        // { v0 = x, v1 = y, v0 + v1 = x + y } is satisfiable by
        // construction; FM must agree even at 2^40 magnitudes.
        let mut s = System::new();
        s.assert_eq(LinExpr::var(Var(0)), LinExpr::constant(x));
        s.assert_eq(LinExpr::var(Var(1)), LinExpr::constant(y));
        s.assert_eq(
            LinExpr::var(Var(0)).add(&LinExpr::var(Var(1))),
            LinExpr::constant(x).add(&LinExpr::constant(y)),
        );
        prop_assert!(s.is_satisfiable());
    }

    #[test]
    fn contradictory_bounds_are_unsatisfiable(x in num(), gap in 1i64..1000) {
        // v ≥ x + gap ∧ v ≤ x is UNSAT for every positive gap.
        let mut s = System::new();
        s.assert_ge(LinExpr::var(Var(0)), LinExpr::constant(x + gap));
        s.assert_ge(LinExpr::constant(x), LinExpr::var(Var(0)));
        prop_assert!(!s.is_satisfiable());
    }
}
