//! Synthetic ZIP archives.
//!
//! Mirrors the paper's ZIP workload: archives holding K copies of the same
//! payload file (§7, "ZIP samples archive different numbers of copies of
//! the same file"). The directory-based structure — local file headers,
//! central directory, end-of-central-directory with its backward-located
//! offsets — is exactly what the IPG ZIP grammar exercises.

use crate::put::{u16le, u32le};
use crate::{rng, text_bytes};
use ipg_flate::{compress, crc32};

/// Compression method for entries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Method {
    /// Method 0: stored.
    Stored,
    /// Method 8: DEFLATE (via `ipg-flate`).
    #[default]
    Deflate,
}

impl Method {
    /// The ZIP method id.
    pub fn id(self) -> u16 {
        match self {
            Method::Stored => 0,
            Method::Deflate => 8,
        }
    }
}

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of entries (copies of the payload).
    pub n_entries: usize,
    /// Uncompressed payload size per entry.
    pub payload_len: usize,
    /// Compression method.
    pub method: Method,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { n_entries: 4, payload_len: 2048, method: Method::Deflate, seed: 42 }
    }
}

/// Ground truth about one entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EntrySummary {
    /// File name stored in the archive.
    pub name: String,
    /// Offset of the entry's local file header.
    pub local_header_offset: u32,
    /// CRC-32 of the uncompressed payload.
    pub crc32: u32,
    /// Compressed size.
    pub compressed_size: u32,
    /// Uncompressed size.
    pub uncompressed_size: u32,
}

/// A generated archive plus its ground truth.
#[derive(Clone, Debug)]
pub struct Generated {
    /// Archive bytes.
    pub bytes: Vec<u8>,
    /// Per-entry ground truth.
    pub entries: Vec<EntrySummary>,
    /// The shared uncompressed payload.
    pub payload: Vec<u8>,
    /// Offset of the central directory.
    pub cd_offset: u32,
    /// Size in bytes of the central directory.
    pub cd_size: u32,
}

/// Generates one archive.
pub fn generate(config: &Config) -> Generated {
    let mut rng = rng(config.seed);
    let payload = text_bytes(&mut rng, config.payload_len);
    let crc = crc32(&payload);
    let packed = match config.method {
        Method::Stored => payload.clone(),
        Method::Deflate => compress(&payload),
    };

    let mut bytes = Vec::new();
    let mut entries = Vec::with_capacity(config.n_entries);

    for i in 0..config.n_entries {
        let name = format!("file_{i:04}.txt");
        let offset = bytes.len() as u32;
        // Local file header.
        u32le(&mut bytes, 0x0403_4b50); // PK\x03\x04
        u16le(&mut bytes, 20); // version needed
        u16le(&mut bytes, 0); // flags
        u16le(&mut bytes, config.method.id());
        u16le(&mut bytes, 0x6000); // mod time
        u16le(&mut bytes, 0x58c5); // mod date
        u32le(&mut bytes, crc);
        u32le(&mut bytes, packed.len() as u32);
        u32le(&mut bytes, payload.len() as u32);
        u16le(&mut bytes, name.len() as u16);
        u16le(&mut bytes, 0); // extra len
        bytes.extend_from_slice(name.as_bytes());
        bytes.extend_from_slice(&packed);
        entries.push(EntrySummary {
            name,
            local_header_offset: offset,
            crc32: crc,
            compressed_size: packed.len() as u32,
            uncompressed_size: payload.len() as u32,
        });
    }

    // Central directory.
    let cd_offset = bytes.len() as u32;
    for e in &entries {
        u32le(&mut bytes, 0x0201_4b50); // PK\x01\x02
        u16le(&mut bytes, 20); // version made by
        u16le(&mut bytes, 20); // version needed
        u16le(&mut bytes, 0); // flags
        u16le(&mut bytes, config.method.id());
        u16le(&mut bytes, 0x6000);
        u16le(&mut bytes, 0x58c5);
        u32le(&mut bytes, e.crc32);
        u32le(&mut bytes, e.compressed_size);
        u32le(&mut bytes, e.uncompressed_size);
        u16le(&mut bytes, e.name.len() as u16);
        u16le(&mut bytes, 0); // extra
        u16le(&mut bytes, 0); // comment
        u16le(&mut bytes, 0); // disk number
        u16le(&mut bytes, 0); // internal attrs
        u32le(&mut bytes, 0); // external attrs
        u32le(&mut bytes, e.local_header_offset);
        bytes.extend_from_slice(e.name.as_bytes());
    }
    let cd_size = bytes.len() as u32 - cd_offset;

    // End of central directory.
    u32le(&mut bytes, 0x0605_4b50); // PK\x05\x06
    u16le(&mut bytes, 0); // disk
    u16le(&mut bytes, 0); // cd start disk
    u16le(&mut bytes, entries.len() as u16);
    u16le(&mut bytes, entries.len() as u16);
    u32le(&mut bytes, cd_size);
    u32le(&mut bytes, cd_offset);
    u16le(&mut bytes, 0); // comment len

    Generated { bytes, entries, payload, cd_offset, cd_size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eocd_points_at_central_directory() {
        let g = generate(&Config::default());
        let b = &g.bytes;
        let eocd = b.len() - 22;
        assert_eq!(&b[eocd..eocd + 4], &0x0605_4b50u32.to_le_bytes());
        let cd_off = u32::from_le_bytes(b[eocd + 16..eocd + 20].try_into().unwrap());
        assert_eq!(cd_off, g.cd_offset);
        assert_eq!(&b[cd_off as usize..cd_off as usize + 4], &0x0201_4b50u32.to_le_bytes());
    }

    #[test]
    fn entries_decompress_to_the_payload() {
        let g = generate(&Config { n_entries: 2, ..Default::default() });
        for e in &g.entries {
            let off = e.local_header_offset as usize;
            let name_len =
                u16::from_le_bytes(g.bytes[off + 26..off + 28].try_into().unwrap()) as usize;
            let data_off = off + 30 + name_len;
            let data = &g.bytes[data_off..data_off + e.compressed_size as usize];
            let unpacked = ipg_flate::inflate(data).unwrap();
            assert_eq!(unpacked, g.payload);
            assert_eq!(ipg_flate::crc32(&unpacked), e.crc32);
        }
    }

    #[test]
    fn stored_entries_hold_raw_payload() {
        let g = generate(&Config { method: Method::Stored, n_entries: 1, ..Default::default() });
        let e = &g.entries[0];
        assert_eq!(e.compressed_size, e.uncompressed_size);
    }

    #[test]
    fn entry_count_scales() {
        for n in [1, 8, 64] {
            let g = generate(&Config { n_entries: n, ..Default::default() });
            assert_eq!(g.entries.len(), n);
        }
    }

    #[test]
    fn deflate_compresses_the_text_payload() {
        let g = generate(&Config::default());
        assert!(g.entries[0].compressed_size < g.entries[0].uncompressed_size);
    }
}
