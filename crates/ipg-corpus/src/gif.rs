//! Synthetic GIF89a images.
//!
//! The chunk-based case study of §4.2: signature, Logical Screen
//! Descriptor with optional global color table, a list of blocks (graphic
//! control extensions + image descriptors with sub-block-coded data,
//! plus comment extensions), and the trailer. Image data is opaque to the
//! parser (the paper delegates LZW decoding to a blackbox), so sub-blocks
//! carry pseudo-random bytes.

use crate::put::u16le;
use crate::{random_bytes, rng};

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of frames (image descriptor blocks).
    pub n_frames: usize,
    /// Logical screen width.
    pub width: u16,
    /// Logical screen height.
    pub height: u16,
    /// Global color table size exponent (0..=7; table has 2^(n+1)
    /// entries); `None` for no global color table.
    pub gct_bits: Option<u8>,
    /// Bytes of LZW data per frame (split into ≤255-byte sub-blocks).
    pub data_per_frame: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n_frames: 3,
            width: 320,
            height: 200,
            gct_bits: Some(7),
            data_per_frame: 4096,
            seed: 42,
        }
    }
}

/// Ground truth about a generated image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Summary {
    /// Number of image frames.
    pub n_frames: usize,
    /// Logical screen size.
    pub width: u16,
    /// Logical screen height.
    pub height: u16,
    /// Whether a global color table is present.
    pub has_gct: bool,
    /// Size of the global color table in bytes (0 when absent).
    pub gct_len: usize,
    /// Total number of top-level blocks before the trailer (extensions +
    /// image descriptors).
    pub n_blocks: usize,
}

/// A generated image plus its ground truth.
#[derive(Clone, Debug)]
pub struct Generated {
    /// File bytes.
    pub bytes: Vec<u8>,
    /// Ground truth.
    pub summary: Summary,
}

/// Generates one GIF.
pub fn generate(config: &Config) -> Generated {
    let mut rng = rng(config.seed);
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"GIF89a");

    // Logical Screen Descriptor.
    u16le(&mut bytes, config.width);
    u16le(&mut bytes, config.height);
    let (packed, gct_len) = match config.gct_bits {
        Some(bits) => {
            let bits = bits.min(7);
            (0x80 | bits, 3usize * (2 << bits))
        }
        None => (0u8, 0usize),
    };
    bytes.push(packed);
    bytes.push(0); // background color index
    bytes.push(0); // pixel aspect ratio
    bytes.extend_from_slice(&random_bytes(&mut rng, gct_len));

    let mut n_blocks = 0;
    for frame in 0..config.n_frames {
        // Graphic Control Extension.
        bytes.extend_from_slice(&[0x21, 0xf9, 0x04]);
        bytes.push(0x04); // packed (no transparency)
        u16le(&mut bytes, 10); // delay
        bytes.push(0); // transparent color index
        bytes.push(0); // block terminator
        n_blocks += 1;

        // Image Descriptor.
        bytes.push(0x2c);
        u16le(&mut bytes, 0); // left
        u16le(&mut bytes, 0); // top
        u16le(&mut bytes, config.width);
        u16le(&mut bytes, config.height);
        bytes.push(0); // packed: no local color table
        bytes.push(8); // LZW minimum code size
        let mut remaining = config.data_per_frame;
        while remaining > 0 {
            let n = remaining.min(255);
            bytes.push(n as u8);
            bytes.extend_from_slice(&random_bytes(&mut rng, n));
            remaining -= n;
        }
        bytes.push(0); // sub-block terminator
        n_blocks += 1;

        // Every other frame gets a comment extension, for block variety.
        if frame % 2 == 1 {
            bytes.extend_from_slice(&[0x21, 0xfe]);
            let comment = format!("frame {frame}");
            bytes.push(comment.len() as u8);
            bytes.extend_from_slice(comment.as_bytes());
            bytes.push(0);
            n_blocks += 1;
        }
    }
    bytes.push(0x3b); // trailer

    let has_gct = config.gct_bits.is_some();
    Generated {
        bytes,
        summary: Summary {
            n_frames: config.n_frames,
            width: config.width,
            height: config.height,
            has_gct,
            gct_len,
            n_blocks,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_and_trailer() {
        let g = generate(&Config::default());
        assert_eq!(&g.bytes[..6], b"GIF89a");
        assert_eq!(*g.bytes.last().unwrap(), 0x3b);
    }

    #[test]
    fn lsd_flags_match_config() {
        let with = generate(&Config { gct_bits: Some(3), ..Default::default() });
        assert_eq!(with.bytes[10] & 0x80, 0x80);
        assert_eq!(with.summary.gct_len, 3 * (2 << 3));
        let without = generate(&Config { gct_bits: None, ..Default::default() });
        assert_eq!(without.bytes[10] & 0x80, 0);
        assert_eq!(without.summary.gct_len, 0);
    }

    #[test]
    fn frame_count_scales_file_size() {
        let one = generate(&Config { n_frames: 1, ..Default::default() });
        let ten = generate(&Config { n_frames: 10, ..Default::default() });
        assert!(ten.bytes.len() > 5 * one.bytes.len());
        assert_eq!(ten.summary.n_frames, 10);
    }

    #[test]
    fn sub_blocks_cover_requested_data() {
        let g = generate(&Config { n_frames: 1, data_per_frame: 700, ..Default::default() });
        // 700 bytes → sub-blocks 255+255+190 plus length bytes and the
        // zero terminator.
        let body = 700 + 3 /* length bytes */ + 1 /* terminator */;
        assert!(g.bytes.len() > body);
    }

    #[test]
    fn zero_frames_is_just_header_and_trailer() {
        let g = generate(&Config { n_frames: 0, gct_bits: None, ..Default::default() });
        assert_eq!(g.bytes.len(), 6 + 7 + 1);
        assert_eq!(g.summary.n_blocks, 0);
    }
}
