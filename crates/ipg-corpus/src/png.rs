//! Synthetic PNG files.
//!
//! PNG is the paper's third chunk-based example (§4: "Typically image
//! formats adopt this design, including PNG, JPG and GIF"). Every chunk is
//! `length(4, BE) type(4) data(length) crc32(4)`; the file is the 8-byte
//! signature, an IHDR chunk, data chunks, and an IEND chunk — a perfect
//! fit for the `star` repetition extension.

use crate::put::u32be;
use crate::{random_bytes, rng};
use ipg_flate::crc32;

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of IDAT chunks.
    pub n_idat: usize,
    /// Bytes per IDAT chunk.
    pub idat_len: usize,
    /// Image width/height for IHDR.
    pub width: u32,
    /// Image height.
    pub height: u32,
    /// Include a tEXt chunk.
    pub with_text: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { n_idat: 3, idat_len: 2048, width: 640, height: 480, with_text: true, seed: 42 }
    }
}

/// Ground truth about a generated file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Summary {
    /// Chunk types in order (e.g. `["IHDR", "IDAT", …, "IEND"]`).
    pub chunk_types: Vec<String>,
    /// Per-chunk data lengths.
    pub chunk_lens: Vec<u32>,
    /// IHDR dimensions.
    pub width: u32,
    /// IHDR height.
    pub height: u32,
}

/// A generated file plus its ground truth.
#[derive(Clone, Debug)]
pub struct Generated {
    /// File bytes.
    pub bytes: Vec<u8>,
    /// Ground truth.
    pub summary: Summary,
}

/// The 8-byte PNG signature.
pub const SIGNATURE: [u8; 8] = [0x89, b'P', b'N', b'G', b'\r', b'\n', 0x1a, b'\n'];

fn push_chunk(out: &mut Vec<u8>, ty: &[u8; 4], data: &[u8]) {
    u32be(out, data.len() as u32);
    out.extend_from_slice(ty);
    out.extend_from_slice(data);
    let mut crc_input = Vec::with_capacity(4 + data.len());
    crc_input.extend_from_slice(ty);
    crc_input.extend_from_slice(data);
    u32be(out, crc32(&crc_input));
}

/// Generates one PNG file.
pub fn generate(config: &Config) -> Generated {
    let mut rng = rng(config.seed);
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&SIGNATURE);

    let mut chunk_types = Vec::new();
    let mut chunk_lens = Vec::new();

    // IHDR: width, height, bit depth, color type, compression, filter,
    // interlace.
    let mut ihdr = Vec::with_capacity(13);
    u32be(&mut ihdr, config.width);
    u32be(&mut ihdr, config.height);
    ihdr.extend_from_slice(&[8, 6, 0, 0, 0]);
    push_chunk(&mut bytes, b"IHDR", &ihdr);
    chunk_types.push("IHDR".to_owned());
    chunk_lens.push(13);

    if config.with_text {
        let text = b"Comment\0synthetic corpus for ipg benchmarks";
        push_chunk(&mut bytes, b"tEXt", text);
        chunk_types.push("tEXt".to_owned());
        chunk_lens.push(text.len() as u32);
    }

    for _ in 0..config.n_idat {
        let data = random_bytes(&mut rng, config.idat_len);
        push_chunk(&mut bytes, b"IDAT", &data);
        chunk_types.push("IDAT".to_owned());
        chunk_lens.push(data.len() as u32);
    }

    push_chunk(&mut bytes, b"IEND", &[]);
    chunk_types.push("IEND".to_owned());
    chunk_lens.push(0);

    Generated {
        bytes,
        summary: Summary { chunk_types, chunk_lens, width: config.width, height: config.height },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_and_iend() {
        let g = generate(&Config::default());
        assert_eq!(&g.bytes[..8], &SIGNATURE);
        // IEND chunk: 00000000 IEND crc.
        let tail = &g.bytes[g.bytes.len() - 12..];
        assert_eq!(&tail[4..8], b"IEND");
    }

    #[test]
    fn chunk_crcs_validate() {
        let g = generate(&Config::default());
        let mut pos = 8;
        let mut seen = Vec::new();
        while pos < g.bytes.len() {
            let len = u32::from_be_bytes(g.bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let ty = &g.bytes[pos + 4..pos + 8];
            let data = &g.bytes[pos + 8..pos + 8 + len];
            let crc =
                u32::from_be_bytes(g.bytes[pos + 8 + len..pos + 12 + len].try_into().unwrap());
            let mut crc_input = ty.to_vec();
            crc_input.extend_from_slice(data);
            assert_eq!(crc, crc32(&crc_input), "chunk {}", String::from_utf8_lossy(ty));
            seen.push(String::from_utf8_lossy(ty).into_owned());
            pos += 12 + len;
        }
        assert_eq!(seen, g.summary.chunk_types);
    }

    #[test]
    fn idat_count_scales() {
        let g = generate(&Config { n_idat: 7, ..Default::default() });
        let idats = g.summary.chunk_types.iter().filter(|t| *t == "IDAT").count();
        assert_eq!(idats, 7);
    }

    #[test]
    fn ihdr_dimensions() {
        let g = generate(&Config { width: 31, height: 77, ..Default::default() });
        // IHDR data starts at 8 (sig) + 8 (len+type).
        let w = u32::from_be_bytes(g.bytes[16..20].try_into().unwrap());
        let h = u32::from_be_bytes(g.bytes[20..24].try_into().unwrap());
        assert_eq!((w, h), (31, 77));
    }
}
