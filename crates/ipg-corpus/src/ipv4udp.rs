//! Synthetic IPv4+UDP datagrams (the Fig. 13f/14b workload).

use crate::put::u16be;
use crate::{random_bytes, rng};
use rand::Rng;

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// UDP payload length.
    pub payload_len: usize,
    /// IPv4 options length in 32-bit words (0..=10).
    pub options_words: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { payload_len: 512, options_words: 0, seed: 42 }
    }
}

/// Ground truth about a generated datagram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Summary {
    /// IPv4 header length in bytes (IHL × 4).
    pub ihl_bytes: usize,
    /// Total IPv4 length.
    pub total_len: u16,
    /// Source address.
    pub src: [u8; 4],
    /// Destination address.
    pub dst: [u8; 4],
    /// UDP source port.
    pub sport: u16,
    /// UDP destination port.
    pub dport: u16,
    /// UDP payload length.
    pub payload_len: usize,
}

/// A generated datagram plus its ground truth.
#[derive(Clone, Debug)]
pub struct Generated {
    /// Packet bytes (IPv4 header onward).
    pub bytes: Vec<u8>,
    /// Ground truth.
    pub summary: Summary,
}

/// RFC 1071 Internet checksum over `data`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let Some(&b) = chunks.remainder().first() {
        sum += (b as u32) << 8;
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Generates one datagram.
pub fn generate(config: &Config) -> Generated {
    let mut rng = rng(config.seed);
    let options_words = config.options_words.min(10);
    let ihl_words = 5 + options_words;
    let ihl_bytes = ihl_words * 4;
    let udp_len = 8 + config.payload_len;
    let total_len = (ihl_bytes + udp_len) as u16;

    let src = [192, 168, rng.random(), rng.random()];
    let dst = [10, 0, rng.random(), rng.random()];
    let sport: u16 = rng.random_range(1024..=u16::MAX);
    let dport: u16 = 53;

    let mut bytes = Vec::with_capacity(total_len as usize);
    bytes.push(0x40 | ihl_words as u8); // version 4 + IHL
    bytes.push(0); // DSCP/ECN
    u16be(&mut bytes, total_len);
    u16be(&mut bytes, rng.random()); // identification
    u16be(&mut bytes, 0x4000); // flags: don't fragment
    bytes.push(64); // TTL
    bytes.push(17); // protocol = UDP
    u16be(&mut bytes, 0); // checksum placeholder
    bytes.extend_from_slice(&src);
    bytes.extend_from_slice(&dst);
    for w in 0..options_words {
        // NOP options padded into full words keep parsing simple and real.
        bytes.extend_from_slice(&[1, 1, 1, if w + 1 == options_words { 0 } else { 1 }]);
    }
    let csum = internet_checksum(&bytes[..ihl_bytes]);
    bytes[10..12].copy_from_slice(&csum.to_be_bytes());

    u16be(&mut bytes, sport);
    u16be(&mut bytes, dport);
    u16be(&mut bytes, udp_len as u16);
    u16be(&mut bytes, 0); // UDP checksum: 0 = not computed (legal for IPv4)
    bytes.extend_from_slice(&random_bytes(&mut rng, config.payload_len));

    Generated {
        bytes,
        summary: Summary {
            ihl_bytes,
            total_len,
            src,
            dst,
            sport,
            dport,
            payload_len: config.payload_len,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_are_consistent() {
        let g = generate(&Config::default());
        assert_eq!(g.bytes.len(), g.summary.total_len as usize);
        let ihl = (g.bytes[0] & 0x0f) as usize * 4;
        assert_eq!(ihl, g.summary.ihl_bytes);
    }

    #[test]
    fn header_checksum_validates() {
        let g = generate(&Config { options_words: 2, ..Default::default() });
        let ihl = g.summary.ihl_bytes;
        assert_eq!(internet_checksum(&g.bytes[..ihl]), 0, "checksum over header incl. field is 0");
    }

    #[test]
    fn udp_length_covers_payload() {
        let g = generate(&Config { payload_len: 100, ..Default::default() });
        let ihl = g.summary.ihl_bytes;
        let udp_len = u16::from_be_bytes([g.bytes[ihl + 4], g.bytes[ihl + 5]]);
        assert_eq!(udp_len as usize, 8 + 100);
    }

    #[test]
    fn options_extend_the_header() {
        let without = generate(&Config { options_words: 0, ..Default::default() });
        let with = generate(&Config { options_words: 3, ..Default::default() });
        assert_eq!(with.summary.ihl_bytes - without.summary.ihl_bytes, 12);
    }

    #[test]
    fn checksum_function_known_vector() {
        // From RFC 1071-style examples.
        let data = [
            0x45u8, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(internet_checksum(&data), 0xb861);
    }
}
