//! Synthetic ELF64 (little-endian) object files, section view.
//!
//! Structure mirrors Fig. 9a of the paper: a fixed header whose `e_shoff`
//! points at the section header table, whose entries point at the
//! sections. Includes a `.dynamic` section (type 6, the paper's `DynSec`
//! case), a symbol table plus string table (the deep-name-parsing workload
//! behind the Fig. 13d discussion), and a configurable number of progbits
//! sections.

use crate::put::{u16le, u32le, u64le};
use crate::{random_bytes, rng};
use rand::Rng;

/// ELF header size (ELF64).
pub const EHDR_SIZE: usize = 64;
/// Section header entry size (ELF64).
pub const SHDR_SIZE: usize = 64;
/// Symbol entry size (ELF64).
pub const SYM_SIZE: usize = 24;
/// `.dynamic` entry size (ELF64).
pub const DYN_SIZE: usize = 16;

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of progbits (data) sections.
    pub n_sections: usize,
    /// Bytes per progbits section.
    pub section_size: usize,
    /// Number of symbols in `.symtab`.
    pub n_symbols: usize,
    /// Number of `.dynamic` entries.
    pub n_dyn: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { n_sections: 4, section_size: 256, n_symbols: 16, n_dyn: 8, seed: 42 }
    }
}

/// Ground truth about a generated file, for cross-validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Summary {
    /// Value of `e_shoff`.
    pub shoff: u64,
    /// Value of `e_shnum`.
    pub shnum: u16,
    /// Index of `.shstrtab` (`e_shstrndx`).
    pub shstrndx: u16,
    /// Per-section `(type, offset, size)` in table order.
    pub sections: Vec<(u32, u64, u64)>,
    /// Section names in table order.
    pub section_names: Vec<String>,
    /// Symbol names in `.symtab` order.
    pub symbol_names: Vec<String>,
    /// Number of `.dynamic` entries.
    pub n_dyn: usize,
}

/// A generated file plus its ground truth.
#[derive(Clone, Debug)]
pub struct Generated {
    /// The file bytes.
    pub bytes: Vec<u8>,
    /// Ground truth.
    pub summary: Summary,
}

/// Section types used.
pub mod sh_type {
    /// Inactive entry.
    pub const NULL: u32 = 0;
    /// Program data.
    pub const PROGBITS: u32 = 1;
    /// Symbol table.
    pub const SYMTAB: u32 = 2;
    /// String table.
    pub const STRTAB: u32 = 3;
    /// Dynamic linking info (the paper's `DynSec`).
    pub const DYNAMIC: u32 = 6;
}

struct Section {
    name: String,
    ty: u32,
    data: Vec<u8>,
    link: u32,
    entsize: u64,
}

/// Generates one ELF file.
pub fn generate(config: &Config) -> Generated {
    let mut rng = rng(config.seed);

    // Build section payloads first.
    let mut sections: Vec<Section> = vec![Section {
        name: String::new(),
        ty: sh_type::NULL,
        data: Vec::new(),
        link: 0,
        entsize: 0,
    }];
    for i in 0..config.n_sections {
        sections.push(Section {
            name: format!(".data{i}"),
            ty: sh_type::PROGBITS,
            data: random_bytes(&mut rng, config.section_size),
            link: 0,
            entsize: 0,
        });
    }
    // .dynamic
    let mut dynamic = Vec::with_capacity(config.n_dyn * DYN_SIZE);
    for i in 0..config.n_dyn {
        u64le(&mut dynamic, (i % 30) as u64); // d_tag
        u64le(&mut dynamic, rng.random::<u32>() as u64); // d_val
    }
    sections.push(Section {
        name: ".dynamic".into(),
        ty: sh_type::DYNAMIC,
        data: dynamic,
        link: 0,
        entsize: DYN_SIZE as u64,
    });

    // .strtab: symbol names, NUL-separated, first byte NUL.
    let mut symbol_names = Vec::with_capacity(config.n_symbols);
    let mut strtab = vec![0u8];
    let mut name_offsets = Vec::with_capacity(config.n_symbols);
    for i in 0..config.n_symbols {
        let len = rng.random_range(4..24);
        let name: String = (0..len).map(|_| (b'a' + rng.random_range(0..26u8)) as char).collect();
        let name = format!("sym_{i}_{name}");
        name_offsets.push(strtab.len() as u32);
        strtab.extend_from_slice(name.as_bytes());
        strtab.push(0);
        symbol_names.push(name);
    }

    // .symtab
    let strtab_index = (sections.len() + 1) as u32; // symtab goes first
    let mut symtab = Vec::with_capacity(config.n_symbols * SYM_SIZE);
    for (i, &name_off) in name_offsets.iter().enumerate() {
        u32le(&mut symtab, name_off); // st_name
        symtab.push(1); // st_info (OBJECT)
        symtab.push(0); // st_other
        u16le(&mut symtab, 1); // st_shndx
        u64le(&mut symtab, 0x1000 + (i as u64) * 8); // st_value
        u64le(&mut symtab, 8); // st_size
    }
    sections.push(Section {
        name: ".symtab".into(),
        ty: sh_type::SYMTAB,
        data: symtab,
        link: strtab_index,
        entsize: SYM_SIZE as u64,
    });
    sections.push(Section {
        name: ".strtab".into(),
        ty: sh_type::STRTAB,
        data: strtab,
        link: 0,
        entsize: 0,
    });

    // .shstrtab: section names.
    let mut shstrtab = vec![0u8];
    let mut shname_offsets = vec![0u32; 1];
    for s in sections.iter().skip(1) {
        shname_offsets.push(shstrtab.len() as u32);
        shstrtab.extend_from_slice(s.name.as_bytes());
        shstrtab.push(0);
    }
    shname_offsets.push(shstrtab.len() as u32);
    shstrtab.extend_from_slice(b".shstrtab");
    shstrtab.push(0);
    sections.push(Section {
        name: ".shstrtab".into(),
        ty: sh_type::STRTAB,
        data: shstrtab,
        link: 0,
        entsize: 0,
    });

    // Lay out: header | section datas | section header table.
    let shnum = sections.len() as u16;
    let shstrndx = (sections.len() - 1) as u16;
    let mut offsets = Vec::with_capacity(sections.len());
    let mut pos = EHDR_SIZE as u64;
    for s in &sections {
        offsets.push(pos);
        pos += s.data.len() as u64;
    }
    let shoff = pos;

    let mut bytes = Vec::with_capacity(shoff as usize + sections.len() * SHDR_SIZE);
    // ELF header.
    bytes.extend_from_slice(&[0x7f, b'E', b'L', b'F', 2, 1, 1, 0]);
    bytes.extend_from_slice(&[0u8; 8]); // ABI version + padding
    u16le(&mut bytes, 2); // e_type = EXEC
    u16le(&mut bytes, 0x3e); // e_machine = x86-64
    u32le(&mut bytes, 1); // e_version
    u64le(&mut bytes, 0x40_1000); // e_entry
    u64le(&mut bytes, 0); // e_phoff
    u64le(&mut bytes, shoff); // e_shoff
    u32le(&mut bytes, 0); // e_flags
    u16le(&mut bytes, EHDR_SIZE as u16); // e_ehsize
    u16le(&mut bytes, 56); // e_phentsize
    u16le(&mut bytes, 0); // e_phnum
    u16le(&mut bytes, SHDR_SIZE as u16); // e_shentsize
    u16le(&mut bytes, shnum); // e_shnum
    u16le(&mut bytes, shstrndx); // e_shstrndx
    debug_assert_eq!(bytes.len(), EHDR_SIZE);

    // Section payloads.
    for s in &sections {
        bytes.extend_from_slice(&s.data);
    }

    // Section header table.
    let mut summary_sections = Vec::with_capacity(sections.len());
    for (i, s) in sections.iter().enumerate() {
        let (offset, size) =
            if s.ty == sh_type::NULL { (0, 0) } else { (offsets[i], s.data.len() as u64) };
        u32le(&mut bytes, shname_offsets[i]); // sh_name
        u32le(&mut bytes, s.ty); // sh_type
        u64le(&mut bytes, 0); // sh_flags
        u64le(&mut bytes, 0); // sh_addr
        u64le(&mut bytes, offset); // sh_offset
        u64le(&mut bytes, size); // sh_size
        u32le(&mut bytes, s.link); // sh_link
        u32le(&mut bytes, 0); // sh_info
        u64le(&mut bytes, 1); // sh_addralign
        u64le(&mut bytes, s.entsize); // sh_entsize
        summary_sections.push((s.ty, offset, size));
    }

    Generated {
        bytes,
        summary: Summary {
            shoff,
            shnum,
            shstrndx,
            sections: summary_sections,
            section_names: sections.iter().map(|s| s.name.clone()).collect(),
            symbol_names,
            n_dyn: config.n_dyn,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_fields_are_consistent() {
        let g = generate(&Config::default());
        let b = &g.bytes;
        assert_eq!(&b[..4], &[0x7f, b'E', b'L', b'F']);
        let shoff = u64::from_le_bytes(b[0x28..0x30].try_into().unwrap());
        let shnum = u16::from_le_bytes(b[0x3c..0x3e].try_into().unwrap());
        assert_eq!(shoff, g.summary.shoff);
        assert_eq!(shnum, g.summary.shnum);
        assert_eq!(b.len(), shoff as usize + shnum as usize * SHDR_SIZE);
    }

    #[test]
    fn section_table_entries_point_into_the_file() {
        let g = generate(&Config::default());
        for &(ty, offset, size) in &g.summary.sections {
            if ty != sh_type::NULL {
                assert!(offset as usize + size as usize <= g.bytes.len());
            }
        }
    }

    #[test]
    fn dynamic_section_present_with_entries() {
        let cfg = Config { n_dyn: 5, ..Default::default() };
        let g = generate(&cfg);
        let dynamic =
            g.summary.sections.iter().find(|&&(ty, _, _)| ty == sh_type::DYNAMIC).copied().unwrap();
        assert_eq!(dynamic.2 as usize, 5 * DYN_SIZE);
    }

    #[test]
    fn symtab_matches_symbol_count() {
        let cfg = Config { n_symbols: 9, ..Default::default() };
        let g = generate(&cfg);
        let symtab =
            g.summary.sections.iter().find(|&&(ty, _, _)| ty == sh_type::SYMTAB).copied().unwrap();
        assert_eq!(symtab.2 as usize, 9 * SYM_SIZE);
        assert_eq!(g.summary.symbol_names.len(), 9);
    }

    #[test]
    fn strtab_contains_symbol_names() {
        let g = generate(&Config::default());
        let strtab_idx = g.summary.section_names.iter().position(|n| n == ".strtab").unwrap();
        let (_, off, size) = g.summary.sections[strtab_idx];
        let strtab = &g.bytes[off as usize..(off + size) as usize];
        for name in &g.summary.symbol_names {
            let needle = name.as_bytes();
            assert!(
                strtab.windows(needle.len()).any(|w| w == needle),
                "{name} not found in .strtab"
            );
        }
    }

    #[test]
    fn scales_with_config() {
        let small = generate(&Config { n_sections: 1, section_size: 64, ..Default::default() });
        let big = generate(&Config { n_sections: 32, section_size: 4096, ..Default::default() });
        assert!(big.bytes.len() > 16 * small.bytes.len());
    }
}
