//! Deterministic synthetic corpora for the seven formats evaluated in the
//! paper (§7): ELF, PE, ZIP, GIF, PDF (subset), DNS, IPv4+UDP.
//!
//! The paper benchmarks on real executables, downloaded GIFs, and captured
//! packets — none of which can ship with this reproduction. Each generator
//! here produces *structurally realistic* files: correct magic numbers,
//! headers, offset tables, checksums, and payload sections whose sizes are
//! parameterized so the benchmark sweeps can mirror the paper's x-axes.
//! Every generator also returns a summary of ground-truth facts (section
//! counts, offsets, payload checksums, …) that the format parsers and the
//! baselines are cross-validated against.
//!
//! Generation is deterministic per seed (`StdRng::seed_from_u64`).

pub mod dns;
pub mod elf;
pub mod gif;
pub mod ipv4udp;
pub mod pdf;
pub mod pe;
pub mod png;
pub mod zip;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates the deterministic RNG used by all generators.
pub(crate) fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Fills a buffer with seeded pseudo-random bytes (payload filler).
pub(crate) fn random_bytes(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut out = vec![0u8; len];
    rng.fill(&mut out[..]);
    out
}

/// Compressible filler: repeated dictionary words with random choices, so
/// DEFLATE has realistic matches to find. Public because the grammar-driven
/// generator (`ipg-gen`) uses it to invert the DEFLATE blackbox with
/// realistically compressible payloads.
pub fn text_bytes(rng: &mut StdRng, len: usize) -> Vec<u8> {
    const WORDS: [&str; 8] = [
        "interval ",
        "parsing ",
        "grammar ",
        "format ",
        "header ",
        "offset ",
        "section ",
        "attribute ",
    ];
    let mut out = Vec::with_capacity(len + 16);
    while out.len() < len {
        out.extend_from_slice(WORDS[rng.random_range(0..WORDS.len())].as_bytes());
    }
    out.truncate(len);
    out
}

/// Little-endian write helpers shared by the binary-format generators.
pub(crate) mod put {
    /// Appends a `u16` little-endian.
    pub fn u16le(out: &mut Vec<u8>, v: u16) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a `u32` little-endian.
    pub fn u32le(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a `u64` little-endian.
    pub fn u64le(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a `u16` big-endian (network order).
    pub fn u16be(out: &mut Vec<u8>, v: u16) {
        out.extend_from_slice(&v.to_be_bytes());
    }
    /// Appends a `u32` big-endian.
    pub fn u32be(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = elf::generate(&elf::Config::default());
        let b = elf::generate(&elf::Config::default());
        assert_eq!(a.bytes, b.bytes);
        let a = zip::generate(&zip::Config::default());
        let b = zip::generate(&zip::Config::default());
        assert_eq!(a.bytes, b.bytes);
    }

    #[test]
    fn different_seeds_differ() {
        let a = gif::generate(&gif::Config { seed: 1, ..Default::default() });
        let b = gif::generate(&gif::Config { seed: 2, ..Default::default() });
        assert_ne!(a.bytes, b.bytes);
    }

    #[test]
    fn text_bytes_exact_length_and_compressible() {
        let mut r = rng(1);
        let t = text_bytes(&mut r, 1000);
        assert_eq!(t.len(), 1000);
        let packed = ipg_flate::compress(&t);
        assert!(packed.len() < t.len());
    }
}
