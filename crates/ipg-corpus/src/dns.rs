//! Synthetic DNS messages (RFC 1035), in the style of the packets the
//! paper captured for the Fig. 13e/14a experiments.
//!
//! DNS is the recursion-heavy network format: names are label sequences,
//! and answers typically *compress* names with pointers back into the
//! question section — a random-access pattern inside a packet.

use crate::put::{u16be, u32be};
use crate::rng;
use rand::Rng;

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of questions.
    pub n_questions: usize,
    /// Number of answer records (type A).
    pub n_answers: usize,
    /// Use compression pointers in answer names (real resolvers do).
    pub compress: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { n_questions: 1, n_answers: 4, compress: true, seed: 42 }
    }
}

/// Ground truth about a generated message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Summary {
    /// Transaction id.
    pub id: u16,
    /// Question names (dotted form).
    pub questions: Vec<String>,
    /// Answer `(name, ipv4)` pairs; compressed names resolve to the
    /// question they point at.
    pub answers: Vec<(String, [u8; 4])>,
}

/// A generated message plus its ground truth.
#[derive(Clone, Debug)]
pub struct Generated {
    /// Message bytes.
    pub bytes: Vec<u8>,
    /// Ground truth.
    pub summary: Summary,
}

fn random_name(rng: &mut rand::rngs::StdRng) -> Vec<String> {
    let n_labels = rng.random_range(2..=4);
    (0..n_labels)
        .map(|_| {
            let len = rng.random_range(3..=10);
            (0..len).map(|_| (b'a' + rng.random_range(0..26u8)) as char).collect()
        })
        .collect()
}

fn write_name(out: &mut Vec<u8>, labels: &[String]) {
    for label in labels {
        out.push(label.len() as u8);
        out.extend_from_slice(label.as_bytes());
    }
    out.push(0);
}

/// Generates one DNS response message.
pub fn generate(config: &Config) -> Generated {
    let mut rng = rng(config.seed);
    let mut bytes = Vec::new();

    let id: u16 = rng.random();
    u16be(&mut bytes, id);
    u16be(&mut bytes, 0x8180); // response, recursion desired+available
    u16be(&mut bytes, config.n_questions as u16);
    u16be(&mut bytes, config.n_answers as u16);
    u16be(&mut bytes, 0); // nscount
    u16be(&mut bytes, 0); // arcount

    let mut questions = Vec::with_capacity(config.n_questions);
    let mut question_offsets = Vec::with_capacity(config.n_questions);
    for _ in 0..config.n_questions {
        let labels = random_name(&mut rng);
        question_offsets.push(bytes.len() as u16);
        write_name(&mut bytes, &labels);
        u16be(&mut bytes, 1); // QTYPE = A
        u16be(&mut bytes, 1); // QCLASS = IN
        questions.push(labels.join("."));
    }

    let mut answers = Vec::with_capacity(config.n_answers);
    for i in 0..config.n_answers {
        let name = if config.compress && !questions.is_empty() {
            let q = i % questions.len();
            u16be(&mut bytes, 0xc000 | question_offsets[q]);
            questions[q].clone()
        } else {
            let labels = random_name(&mut rng);
            write_name(&mut bytes, &labels);
            labels.join(".")
        };
        u16be(&mut bytes, 1); // TYPE = A
        u16be(&mut bytes, 1); // CLASS = IN
        u32be(&mut bytes, 300); // TTL
        u16be(&mut bytes, 4); // RDLENGTH
        let ip: [u8; 4] = [10, rng.random(), rng.random(), rng.random()];
        bytes.extend_from_slice(&ip);
        answers.push((name, ip));
    }

    Generated { bytes, summary: Summary { id, questions, answers } }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_counts_match_config() {
        let g = generate(&Config { n_questions: 2, n_answers: 5, ..Default::default() });
        let b = &g.bytes;
        assert_eq!(u16::from_be_bytes([b[4], b[5]]), 2);
        assert_eq!(u16::from_be_bytes([b[6], b[7]]), 5);
        assert_eq!(g.summary.questions.len(), 2);
        assert_eq!(g.summary.answers.len(), 5);
    }

    #[test]
    fn compressed_answers_point_into_questions() {
        let g = generate(&Config { compress: true, ..Default::default() });
        // First answer name starts right after the question section with a
        // 0xc0-prefixed pointer.
        let q_end = {
            // Walk the single question: labels then 0, then 4 bytes.
            let mut i = 12;
            while g.bytes[i] != 0 {
                i += 1 + g.bytes[i] as usize;
            }
            i + 1 + 4
        };
        assert_eq!(g.bytes[q_end] & 0xc0, 0xc0);
        assert_eq!(g.summary.answers[0].0, g.summary.questions[0]);
    }

    #[test]
    fn uncompressed_answers_spell_names_out() {
        let g = generate(&Config { compress: false, n_answers: 1, ..Default::default() });
        // Message must be longer than the compressed equivalent.
        let c = generate(&Config { compress: true, n_answers: 1, ..Default::default() });
        assert!(g.bytes.len() > c.bytes.len());
    }

    #[test]
    fn answer_rdata_is_four_bytes() {
        let g = generate(&Config::default());
        for (_, ip) in &g.summary.answers {
            assert_eq!(ip[0], 10);
        }
    }
}
