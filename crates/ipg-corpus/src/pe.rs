//! Synthetic PE (Portable Executable) files, PE32+ flavour.
//!
//! Directory-based like ELF: a DOS header whose `e_lfanew` field points at
//! the PE signature, followed by the COFF header, the optional header, the
//! section table, and the sections' raw data.

use crate::put::{u16le, u32le, u64le};
use crate::{random_bytes, rng};

/// Offset of `e_lfanew` within the DOS header.
pub const E_LFANEW_OFFSET: usize = 0x3c;
/// Where the PE signature lives in generated files.
pub const PE_SIG_OFFSET: u32 = 0x80;
/// COFF header size.
pub const COFF_SIZE: usize = 20;
/// PE32+ optional header size (with 16 data directories).
pub const OPT_SIZE: usize = 240;
/// Section table entry size.
pub const SECTION_SIZE: usize = 40;
/// File alignment of raw section data.
pub const FILE_ALIGN: u32 = 0x200;

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of sections.
    pub n_sections: usize,
    /// Raw bytes per section (rounded up to [`FILE_ALIGN`]).
    pub section_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { n_sections: 4, section_size: 1024, seed: 42 }
    }
}

/// Ground truth about a generated file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Summary {
    /// `e_lfanew` (offset of the PE signature).
    pub pe_offset: u32,
    /// Number of sections in the COFF header.
    pub n_sections: u16,
    /// Per-section `(name, raw_offset, raw_size)`.
    pub sections: Vec<(String, u32, u32)>,
}

/// A generated file plus its ground truth.
#[derive(Clone, Debug)]
pub struct Generated {
    /// File bytes.
    pub bytes: Vec<u8>,
    /// Ground truth.
    pub summary: Summary,
}

/// Generates one PE file.
pub fn generate(config: &Config) -> Generated {
    let mut rng = rng(config.seed);
    let mut bytes = Vec::new();

    // DOS header: "MZ", zeros, e_lfanew at 0x3c; stub padding to 0x80.
    bytes.extend_from_slice(b"MZ");
    bytes.resize(E_LFANEW_OFFSET, 0);
    u32le(&mut bytes, PE_SIG_OFFSET);
    bytes.resize(PE_SIG_OFFSET as usize, 0);

    // PE signature + COFF header.
    bytes.extend_from_slice(b"PE\0\0");
    u16le(&mut bytes, 0x8664); // machine = x86-64
    u16le(&mut bytes, config.n_sections as u16);
    u32le(&mut bytes, 0x6650_0000); // timestamp
    u32le(&mut bytes, 0); // symbol table ptr
    u32le(&mut bytes, 0); // symbol count
    u16le(&mut bytes, OPT_SIZE as u16);
    u16le(&mut bytes, 0x0022); // characteristics: EXECUTABLE | LARGE_ADDRESS

    // Optional header (PE32+).
    let opt_start = bytes.len();
    u16le(&mut bytes, 0x20b); // magic PE32+
    bytes.push(14); // linker major
    bytes.push(0); // linker minor
    u32le(&mut bytes, 0x1000); // size of code
    u32le(&mut bytes, 0x1000); // size of initialized data
    u32le(&mut bytes, 0); // size of uninitialized data
    u32le(&mut bytes, 0x1000); // entry point
    u32le(&mut bytes, 0x1000); // base of code
    u64le(&mut bytes, 0x1_4000_0000); // image base
    u32le(&mut bytes, 0x1000); // section alignment
    u32le(&mut bytes, FILE_ALIGN); // file alignment
    for _ in 0..6 {
        u16le(&mut bytes, 6); // OS/image/subsystem versions
    }
    u32le(&mut bytes, 0); // win32 version
    u32le(&mut bytes, 0x1000 * (config.n_sections as u32 + 1)); // size of image
    u32le(&mut bytes, 0x400); // size of headers
    u32le(&mut bytes, 0); // checksum
    u16le(&mut bytes, 3); // subsystem = console
    u16le(&mut bytes, 0x8160); // dll characteristics
    u64le(&mut bytes, 0x10_0000); // stack reserve
    u64le(&mut bytes, 0x1000); // stack commit
    u64le(&mut bytes, 0x10_0000); // heap reserve
    u64le(&mut bytes, 0x1000); // heap commit
    u32le(&mut bytes, 0); // loader flags
    u32le(&mut bytes, 16); // number of RVA-and-sizes
    for _ in 0..16 {
        u32le(&mut bytes, 0); // directory RVA
        u32le(&mut bytes, 0); // directory size
    }
    debug_assert_eq!(bytes.len() - opt_start, OPT_SIZE);

    // Section table; raw data starts aligned after the headers.
    let raw_size = (config.section_size as u32).div_ceil(FILE_ALIGN) * FILE_ALIGN;
    let headers_end = bytes.len() + config.n_sections * SECTION_SIZE;
    let raw_base = (headers_end as u32).div_ceil(FILE_ALIGN) * FILE_ALIGN;
    let mut sections = Vec::with_capacity(config.n_sections);
    for i in 0..config.n_sections {
        let name = format!(".sec{i:03}");
        let raw_ptr = raw_base + i as u32 * raw_size;
        let mut name8 = [0u8; 8];
        name8[..name.len().min(8)].copy_from_slice(&name.as_bytes()[..name.len().min(8)]);
        bytes.extend_from_slice(&name8);
        u32le(&mut bytes, config.section_size as u32); // virtual size
        u32le(&mut bytes, 0x1000 * (i as u32 + 1)); // virtual address
        u32le(&mut bytes, raw_size); // size of raw data
        u32le(&mut bytes, raw_ptr); // pointer to raw data
        u32le(&mut bytes, 0); // relocations ptr
        u32le(&mut bytes, 0); // line numbers ptr
        u16le(&mut bytes, 0); // n relocations
        u16le(&mut bytes, 0); // n line numbers
        u32le(&mut bytes, 0x6000_0020); // characteristics: CODE|EXECUTE|READ
        sections.push((name, raw_ptr, raw_size));
    }

    // Raw section data.
    bytes.resize(raw_base as usize, 0);
    for i in 0..config.n_sections {
        let mut data = random_bytes(&mut rng, config.section_size);
        data.resize(raw_size as usize, 0);
        bytes.extend_from_slice(&data);
        let _ = i;
    }

    Generated {
        bytes,
        summary: Summary {
            pe_offset: PE_SIG_OFFSET,
            n_sections: config.n_sections as u16,
            sections,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dos_header_points_at_pe_signature() {
        let g = generate(&Config::default());
        assert_eq!(&g.bytes[..2], b"MZ");
        let lfanew =
            u32::from_le_bytes(g.bytes[E_LFANEW_OFFSET..E_LFANEW_OFFSET + 4].try_into().unwrap());
        assert_eq!(&g.bytes[lfanew as usize..lfanew as usize + 4], b"PE\0\0");
    }

    #[test]
    fn coff_section_count_matches() {
        let g = generate(&Config { n_sections: 7, ..Default::default() });
        let coff = PE_SIG_OFFSET as usize + 4;
        let n = u16::from_le_bytes(g.bytes[coff + 2..coff + 4].try_into().unwrap());
        assert_eq!(n, 7);
    }

    #[test]
    fn sections_are_file_aligned_and_in_bounds() {
        let g = generate(&Config::default());
        for (_, ptr, size) in &g.summary.sections {
            assert_eq!(ptr % FILE_ALIGN, 0);
            assert!((ptr + size) as usize <= g.bytes.len());
        }
    }

    #[test]
    fn optional_header_magic_is_pe32_plus() {
        let g = generate(&Config::default());
        let opt = PE_SIG_OFFSET as usize + 4 + COFF_SIZE;
        let magic = u16::from_le_bytes(g.bytes[opt..opt + 2].try_into().unwrap());
        assert_eq!(magic, 0x20b);
    }
}
