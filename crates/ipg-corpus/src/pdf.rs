//! Synthetic PDF files (a functional subset, like the paper's §4.3 case
//! study).
//!
//! The subset keeps exactly the features that make PDF interesting for
//! interval parsing:
//!
//! * **backward parsing** — the byte offset of the xref table sits between
//!   `startxref` and `%%EOF` at the end of the file, so a parser must scan
//!   backward for a number whose *end* is known but whose start is not;
//! * **random access** — the xref table lists the absolute offset of every
//!   object (fixed 20-byte entries);
//! * **type-length-value** — each object carries a `/Length n` key
//!   describing its stream payload.

use crate::{random_bytes, rng};

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of indirect objects.
    pub n_objects: usize,
    /// Stream payload bytes per object.
    pub stream_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { n_objects: 8, stream_len: 512, seed: 42 }
    }
}

/// Ground truth about a generated file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Summary {
    /// Absolute offset of the `xref` keyword.
    pub xref_offset: usize,
    /// Per-object `(id, offset, stream_len)`.
    pub objects: Vec<(usize, usize, usize)>,
}

/// A generated file plus its ground truth.
#[derive(Clone, Debug)]
pub struct Generated {
    /// File bytes.
    pub bytes: Vec<u8>,
    /// Ground truth.
    pub summary: Summary,
}

/// Generates one PDF file.
pub fn generate(config: &Config) -> Generated {
    let mut rng = rng(config.seed);
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"%PDF-1.4\n");

    let mut objects = Vec::with_capacity(config.n_objects);
    for i in 1..=config.n_objects {
        let offset = bytes.len();
        let data = random_bytes(&mut rng, config.stream_len);
        bytes.extend_from_slice(
            format!("{i} 0 obj\n<< /Kind /Blob /Length {} >>\nstream\n", data.len()).as_bytes(),
        );
        bytes.extend_from_slice(&data);
        bytes.extend_from_slice(b"\nendstream\nendobj\n");
        objects.push((i, offset, data.len()));
    }

    let xref_offset = bytes.len();
    bytes.extend_from_slice(format!("xref\n0 {}\n", config.n_objects + 1).as_bytes());
    bytes.extend_from_slice(b"0000000000 65535 f \n");
    for &(_, offset, _) in &objects {
        bytes.extend_from_slice(format!("{offset:010} 00000 n \n").as_bytes());
    }
    bytes.extend_from_slice(
        format!(
            "trailer\n<< /Size {} /Root 1 0 R >>\nstartxref\n{xref_offset}\n%%EOF",
            config.n_objects + 1
        )
        .as_bytes(),
    );

    Generated { bytes, summary: Summary { xref_offset, objects } }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailer_points_at_xref() {
        let g = generate(&Config::default());
        let text = &g.bytes;
        assert!(text.starts_with(b"%PDF-1.4\n"));
        assert!(text.ends_with(b"%%EOF"));
        assert_eq!(&text[g.summary.xref_offset..g.summary.xref_offset + 4], b"xref");
    }

    #[test]
    fn xref_entries_are_twenty_bytes() {
        let g = generate(&Config { n_objects: 3, ..Default::default() });
        let xref = g.summary.xref_offset;
        // "xref\n0 4\n" then 4 × 20-byte entries.
        let header_len = b"xref\n0 4\n".len();
        let entries = &g.bytes[xref + header_len..xref + header_len + 4 * 20];
        for entry in entries.chunks(20) {
            assert_eq!(entry.len(), 20);
            assert_eq!(entry[19], b'\n');
        }
    }

    #[test]
    fn object_offsets_point_at_object_headers() {
        let g = generate(&Config::default());
        for &(id, offset, _) in &g.summary.objects {
            let expected = format!("{id} 0 obj");
            assert_eq!(&g.bytes[offset..offset + expected.len()], expected.as_bytes());
        }
    }

    #[test]
    fn startxref_number_matches_summary() {
        let g = generate(&Config::default());
        let text = String::from_utf8_lossy(&g.bytes);
        let idx = text.rfind("startxref\n").unwrap();
        let num: usize = text[idx + 10..].lines().next().unwrap().parse().unwrap();
        assert_eq!(num, g.summary.xref_offset);
    }

    #[test]
    fn stream_lengths_recorded() {
        let g = generate(&Config { n_objects: 2, stream_len: 77, ..Default::default() });
        for &(_, _, len) in &g.summary.objects {
            assert_eq!(len, 77);
        }
    }
}
