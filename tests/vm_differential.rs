//! Differential tests: the bytecode VM against the reference tree-walking
//! interpreter, over corpus-generated inputs for every format grammar —
//! including truncated and corrupted mutants.
//!
//! The agreement contract (step counts, trees, deepest errors) is
//! implemented by [`common::assert_engines_agree`]; this file contributes
//! the proptest-driven corpus configurations and mutation sweeps.

mod common;

use common::mutate;
use proptest::prelude::*;

/// Engine agreement for the named format, via the shared fuel-bounded
/// engine table in `common`.
fn assert_agreement(name: &str, input: &[u8]) {
    let f = common::format(name);
    common::assert_engines_agree(f.name, f.grammar, f.vm, input);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn zip_vm_agrees(
        n_entries in 1usize..8,
        payload_len in 1usize..600,
        deflate in any::<bool>(),
        seed in 0u64..1000,
        kind in 0u8..4, pos in 0usize..1 << 16, value in 0u8..=255,
    ) {
        let method = if deflate {
            ipg_corpus::zip::Method::Deflate
        } else {
            ipg_corpus::zip::Method::Stored
        };
        let mut bytes =
            ipg_corpus::zip::generate(&ipg_corpus::zip::Config { n_entries, payload_len, method, seed }).bytes;
        mutate(&mut bytes, kind, pos, value);
        assert_agreement("zip", &bytes);
    }

    #[test]
    fn zip_inflate_vm_agrees(
        n_entries in 1usize..6,
        payload_len in 1usize..600,
        seed in 0u64..1000,
        kind in 0u8..4, pos in 0usize..1 << 16, value in 0u8..=255,
    ) {
        let mut bytes = ipg_corpus::zip::generate(&ipg_corpus::zip::Config {
            n_entries,
            payload_len,
            method: ipg_corpus::zip::Method::Deflate,
            seed,
        })
        .bytes;
        mutate(&mut bytes, kind, pos, value);
        assert_agreement("zip_inflate", &bytes);
    }

    #[test]
    fn dns_vm_agrees(
        n_questions in 0usize..4,
        n_answers in 0usize..8,
        compress in any::<bool>(),
        seed in 0u64..1000,
        kind in 0u8..4, pos in 0usize..1 << 16, value in 0u8..=255,
    ) {
        let mut bytes = ipg_corpus::dns::generate(&ipg_corpus::dns::Config {
            n_questions, n_answers, compress, seed,
        })
        .bytes;
        mutate(&mut bytes, kind, pos, value);
        assert_agreement("dns", &bytes);
    }

    #[test]
    fn png_vm_agrees(
        n_idat in 0usize..6,
        idat_len in 1usize..500,
        with_text in any::<bool>(),
        seed in 0u64..1000,
        kind in 0u8..4, pos in 0usize..1 << 16, value in 0u8..=255,
    ) {
        let mut bytes = ipg_corpus::png::generate(&ipg_corpus::png::Config {
            n_idat, idat_len, with_text, seed, ..Default::default()
        })
        .bytes;
        mutate(&mut bytes, kind, pos, value);
        assert_agreement("png", &bytes);
    }

    #[test]
    fn gif_vm_agrees(
        n_frames in 0usize..6,
        data_per_frame in 1usize..800,
        seed in 0u64..1000,
        kind in 0u8..4, pos in 0usize..1 << 16, value in 0u8..=255,
    ) {
        let mut bytes = ipg_corpus::gif::generate(&ipg_corpus::gif::Config {
            n_frames, data_per_frame, seed, ..Default::default()
        })
        .bytes;
        mutate(&mut bytes, kind, pos, value);
        assert_agreement("gif", &bytes);
    }

    #[test]
    fn elf_vm_agrees(
        n_sections in 0usize..6,
        n_symbols in 0usize..16,
        n_dyn in 0usize..6,
        section_size in 1usize..300,
        seed in 0u64..1000,
        kind in 0u8..4, pos in 0usize..1 << 16, value in 0u8..=255,
    ) {
        let mut bytes = ipg_corpus::elf::generate(&ipg_corpus::elf::Config {
            n_sections, n_symbols, n_dyn, section_size, seed,
        })
        .bytes;
        mutate(&mut bytes, kind, pos, value);
        assert_agreement("elf", &bytes);
    }

    #[test]
    fn ipv4udp_vm_agrees(
        payload_len in 0usize..2000,
        options_words in 0usize..8,
        seed in 0u64..1000,
        kind in 0u8..4, pos in 0usize..1 << 16, value in 0u8..=255,
    ) {
        let mut bytes = ipg_corpus::ipv4udp::generate(&ipg_corpus::ipv4udp::Config {
            payload_len, options_words, seed,
        })
        .bytes;
        mutate(&mut bytes, kind, pos, value);
        assert_agreement("ipv4udp", &bytes);
    }

    #[test]
    fn pe_vm_agrees(
        n_sections in 1usize..8,
        section_size in 1usize..2000,
        seed in 0u64..1000,
        kind in 0u8..4, pos in 0usize..1 << 16, value in 0u8..=255,
    ) {
        let mut bytes = ipg_corpus::pe::generate(&ipg_corpus::pe::Config {
            n_sections, section_size, seed,
        })
        .bytes;
        mutate(&mut bytes, kind, pos, value);
        assert_agreement("pe", &bytes);
    }

    #[test]
    fn pdf_vm_agrees(
        n_objects in 1usize..6,
        stream_len in 1usize..600,
        seed in 0u64..1000,
        kind in 0u8..4, pos in 0usize..1 << 16, value in 0u8..=255,
    ) {
        let mut bytes = ipg_corpus::pdf::generate(&ipg_corpus::pdf::Config {
            n_objects, stream_len, seed,
        })
        .bytes;
        mutate(&mut bytes, kind, pos, value);
        assert_agreement("pdf", &bytes);
    }
}

/// Fixed (non-proptest) smoke checks: pristine corpus defaults for every
/// grammar plus a systematic truncation sweep on one format, so agreement
/// failures show up even with a single test filter.
#[test]
fn vm_agrees_on_pristine_corpus_defaults() {
    for f in common::formats() {
        assert_agreement(f.name, &common::default_corpus_input(f.name));
    }
}

#[test]
fn vm_agrees_on_every_truncation_of_a_dns_message() {
    let bytes = ipg_corpus::dns::generate(&ipg_corpus::dns::Config {
        n_questions: 1,
        n_answers: 2,
        compress: true,
        seed: 42,
    })
    .bytes;
    for cut in 0..bytes.len() {
        assert_agreement("dns", &bytes[..cut]);
    }
}
