//! Differential tests: the bytecode VM against the reference tree-walking
//! interpreter, over corpus-generated inputs for every format grammar —
//! including truncated and corrupted mutants.
//!
//! Agreement required on every input:
//!
//! * **step counts** — both engines tick at the same evaluation points;
//! * **trees** — `TreeRef::to_tree` of the VM result must equal the
//!   interpreter's `Rc<Tree>` node for node, which covers tree shape,
//!   every attribute environment (including `start`/`end`, i.e. consumed
//!   bytes), spans, chosen alternatives, and blackbox payloads;
//! * **errors** — rejected inputs must produce the identical deepest
//!   failure (offset, nonterminal, message).

use ipg_core::check::Grammar;
use ipg_core::interp::vm::VmParser;
use ipg_core::interp::Parser;
use proptest::prelude::*;

/// A deterministic input mutation, driven by proptest-chosen parameters.
fn mutate(bytes: &mut Vec<u8>, kind: u8, pos: usize, value: u8) {
    if bytes.is_empty() {
        return;
    }
    match kind % 4 {
        0 => {}                                 // pristine
        1 => bytes.truncate(pos % bytes.len()), // truncation
        2 => {
            let p = pos % bytes.len();
            bytes[p] ^= value | 1; // guaranteed change
        }
        _ => {
            // Splice: overwrite a short run, simulating a corrupted field.
            let p = pos % bytes.len();
            let end = (p + 4).min(bytes.len());
            for b in &mut bytes[p..end] {
                *b = value;
            }
        }
    }
}

fn assert_agreement(name: &str, g: &Grammar, vm: &VmParser<'_>, input: &[u8]) {
    let (ri, si) = Parser::new(g).parse_with_stats(input);
    let (rv, sv) = vm.parse_with_stats(input);
    assert_eq!(
        si.steps, sv.steps,
        "{name}: engines disagree on step count ({} vs {})",
        si.steps, sv.steps
    );
    match (ri, rv) {
        (Ok(reference), Ok(tree)) => {
            let converted = tree.root().to_tree();
            assert_eq!(converted, reference, "{name}: engines accept but build different trees");
        }
        (Err(ei), Err(ev)) => {
            assert_eq!(ei, ev, "{name}: engines reject with different errors");
        }
        (Ok(_), Err(e)) => panic!("{name}: interpreter accepts, VM rejects: {e}"),
        (Err(e), Ok(_)) => panic!("{name}: VM accepts, interpreter rejects: {e}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn zip_vm_agrees(
        n_entries in 1usize..8,
        payload_len in 1usize..600,
        deflate in any::<bool>(),
        seed in 0u64..1000,
        kind in 0u8..4, pos in 0usize..1 << 16, value in 0u8..=255,
    ) {
        let method = if deflate {
            ipg_corpus::zip::Method::Deflate
        } else {
            ipg_corpus::zip::Method::Stored
        };
        let mut bytes =
            ipg_corpus::zip::generate(&ipg_corpus::zip::Config { n_entries, payload_len, method, seed }).bytes;
        mutate(&mut bytes, kind, pos, value);
        assert_agreement("zip", ipg_formats::zip::grammar(), ipg_formats::zip::vm(), &bytes);
    }

    #[test]
    fn zip_inflate_vm_agrees(
        n_entries in 1usize..6,
        payload_len in 1usize..600,
        seed in 0u64..1000,
        kind in 0u8..4, pos in 0usize..1 << 16, value in 0u8..=255,
    ) {
        let mut bytes = ipg_corpus::zip::generate(&ipg_corpus::zip::Config {
            n_entries,
            payload_len,
            method: ipg_corpus::zip::Method::Deflate,
            seed,
        })
        .bytes;
        mutate(&mut bytes, kind, pos, value);
        assert_agreement(
            "zip_inflate",
            ipg_formats::zip::grammar_inflate(),
            ipg_formats::zip::vm_inflate(),
            &bytes,
        );
    }

    #[test]
    fn dns_vm_agrees(
        n_questions in 0usize..4,
        n_answers in 0usize..8,
        compress in any::<bool>(),
        seed in 0u64..1000,
        kind in 0u8..4, pos in 0usize..1 << 16, value in 0u8..=255,
    ) {
        let mut bytes = ipg_corpus::dns::generate(&ipg_corpus::dns::Config {
            n_questions, n_answers, compress, seed,
        })
        .bytes;
        mutate(&mut bytes, kind, pos, value);
        assert_agreement("dns", ipg_formats::dns::grammar(), ipg_formats::dns::vm(), &bytes);
    }

    #[test]
    fn png_vm_agrees(
        n_idat in 0usize..6,
        idat_len in 1usize..500,
        with_text in any::<bool>(),
        seed in 0u64..1000,
        kind in 0u8..4, pos in 0usize..1 << 16, value in 0u8..=255,
    ) {
        let mut bytes = ipg_corpus::png::generate(&ipg_corpus::png::Config {
            n_idat, idat_len, with_text, seed, ..Default::default()
        })
        .bytes;
        mutate(&mut bytes, kind, pos, value);
        assert_agreement("png", ipg_formats::png::grammar(), ipg_formats::png::vm(), &bytes);
    }

    #[test]
    fn gif_vm_agrees(
        n_frames in 0usize..6,
        data_per_frame in 1usize..800,
        seed in 0u64..1000,
        kind in 0u8..4, pos in 0usize..1 << 16, value in 0u8..=255,
    ) {
        let mut bytes = ipg_corpus::gif::generate(&ipg_corpus::gif::Config {
            n_frames, data_per_frame, seed, ..Default::default()
        })
        .bytes;
        mutate(&mut bytes, kind, pos, value);
        assert_agreement("gif", ipg_formats::gif::grammar(), ipg_formats::gif::vm(), &bytes);
    }

    #[test]
    fn elf_vm_agrees(
        n_sections in 0usize..6,
        n_symbols in 0usize..16,
        n_dyn in 0usize..6,
        section_size in 1usize..300,
        seed in 0u64..1000,
        kind in 0u8..4, pos in 0usize..1 << 16, value in 0u8..=255,
    ) {
        let mut bytes = ipg_corpus::elf::generate(&ipg_corpus::elf::Config {
            n_sections, n_symbols, n_dyn, section_size, seed,
        })
        .bytes;
        mutate(&mut bytes, kind, pos, value);
        assert_agreement("elf", ipg_formats::elf::grammar(), ipg_formats::elf::vm(), &bytes);
    }

    #[test]
    fn ipv4udp_vm_agrees(
        payload_len in 0usize..2000,
        options_words in 0usize..8,
        seed in 0u64..1000,
        kind in 0u8..4, pos in 0usize..1 << 16, value in 0u8..=255,
    ) {
        let mut bytes = ipg_corpus::ipv4udp::generate(&ipg_corpus::ipv4udp::Config {
            payload_len, options_words, seed,
        })
        .bytes;
        mutate(&mut bytes, kind, pos, value);
        assert_agreement(
            "ipv4udp",
            ipg_formats::ipv4udp::grammar(),
            ipg_formats::ipv4udp::vm(),
            &bytes,
        );
    }

    #[test]
    fn pe_vm_agrees(
        n_sections in 1usize..8,
        section_size in 1usize..2000,
        seed in 0u64..1000,
        kind in 0u8..4, pos in 0usize..1 << 16, value in 0u8..=255,
    ) {
        let mut bytes = ipg_corpus::pe::generate(&ipg_corpus::pe::Config {
            n_sections, section_size, seed,
        })
        .bytes;
        mutate(&mut bytes, kind, pos, value);
        assert_agreement("pe", ipg_formats::pe::grammar(), ipg_formats::pe::vm(), &bytes);
    }

    #[test]
    fn pdf_vm_agrees(
        n_objects in 1usize..6,
        stream_len in 1usize..600,
        seed in 0u64..1000,
        kind in 0u8..4, pos in 0usize..1 << 16, value in 0u8..=255,
    ) {
        let mut bytes = ipg_corpus::pdf::generate(&ipg_corpus::pdf::Config {
            n_objects, stream_len, seed,
        })
        .bytes;
        mutate(&mut bytes, kind, pos, value);
        assert_agreement("pdf", ipg_formats::pdf::grammar(), ipg_formats::pdf::vm(), &bytes);
    }
}

/// Fixed (non-proptest) smoke checks: pristine corpus defaults for every
/// grammar plus a systematic truncation sweep on one format, so agreement
/// failures show up even with a single test filter.
#[test]
fn vm_agrees_on_pristine_corpus_defaults() {
    assert_agreement(
        "zip",
        ipg_formats::zip::grammar(),
        ipg_formats::zip::vm(),
        &ipg_corpus::zip::generate(&Default::default()).bytes,
    );
    assert_agreement(
        "zip_inflate",
        ipg_formats::zip::grammar_inflate(),
        ipg_formats::zip::vm_inflate(),
        &ipg_corpus::zip::generate(&Default::default()).bytes,
    );
    assert_agreement(
        "dns",
        ipg_formats::dns::grammar(),
        ipg_formats::dns::vm(),
        &ipg_corpus::dns::generate(&Default::default()).bytes,
    );
    assert_agreement(
        "png",
        ipg_formats::png::grammar(),
        ipg_formats::png::vm(),
        &ipg_corpus::png::generate(&Default::default()).bytes,
    );
    assert_agreement(
        "gif",
        ipg_formats::gif::grammar(),
        ipg_formats::gif::vm(),
        &ipg_corpus::gif::generate(&Default::default()).bytes,
    );
    assert_agreement(
        "elf",
        ipg_formats::elf::grammar(),
        ipg_formats::elf::vm(),
        &ipg_corpus::elf::generate(&Default::default()).bytes,
    );
    assert_agreement(
        "ipv4udp",
        ipg_formats::ipv4udp::grammar(),
        ipg_formats::ipv4udp::vm(),
        &ipg_corpus::ipv4udp::generate(&Default::default()).bytes,
    );
    assert_agreement(
        "pe",
        ipg_formats::pe::grammar(),
        ipg_formats::pe::vm(),
        &ipg_corpus::pe::generate(&Default::default()).bytes,
    );
    assert_agreement(
        "pdf",
        ipg_formats::pdf::grammar(),
        ipg_formats::pdf::vm(),
        &ipg_corpus::pdf::generate(&Default::default()).bytes,
    );
}

#[test]
fn vm_agrees_on_every_truncation_of_a_dns_message() {
    let bytes = ipg_corpus::dns::generate(&ipg_corpus::dns::Config {
        n_questions: 1,
        n_answers: 2,
        compress: true,
        seed: 42,
    })
    .bytes;
    let g = ipg_formats::dns::grammar();
    let vm = ipg_formats::dns::vm();
    for cut in 0..bytes.len() {
        assert_agreement("dns-truncated", g, vm, &bytes[..cut]);
    }
}
