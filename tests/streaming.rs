//! Chunk-size invariance of streaming VM sessions.
//!
//! The contract: for every corpus grammar and every chunking of the input
//! — 1-byte, 7-byte, and seeded random splits — a [`Session`] fed the
//! chunks and then finished yields *exactly* the one-shot result: the
//! same tree (node for node, attribute for attribute, via `to_tree`), the
//! same step count, and the same deepest error on rejection, on both the
//! VM and (through the one-shot cross-engine contract) the reference
//! interpreter.
//!
//! Inputs come from the grammar-driven generator (`ipg-gen`) plus the
//! deterministic corpus lane and truncated/corrupted mutants, so both the
//! accept and reject paths are exercised.
//!
//! Set `IPG_STREAM_QUICK=1` to reduce the sweep for CI smoke jobs.

mod common;

use common::{default_corpus_input, formats, mutate, Format};
use ipg_core::interp::vm::{Outcome, VmParser};
use ipg_core::tree::Tree;
use ipg_core::Error;
use std::rc::Rc;

fn quick() -> bool {
    std::env::var("IPG_STREAM_QUICK").is_ok_and(|v| v != "0")
}

/// SplitMix64, the repo's standard seeded generator for test sweeps.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Feeds `input` to a fresh session in the given chunk pattern and
/// finishes. Returns the final outcome plus the session's step count.
fn run_chunked(
    vm: &VmParser<'_>,
    input: &[u8],
    chunks: &[usize],
) -> (Result<Rc<Tree>, Error>, u64) {
    let mut session = vm.streaming();
    let mut off = 0;
    let mut early: Option<Error> = None;
    for &sz in chunks {
        let end = (off + sz).min(input.len());
        if off >= end {
            break;
        }
        if let Outcome::Error(e) = session.feed(&input[off..end]) {
            // A determined rejection mid-stream: it must equal the
            // one-shot error, and finish must replay it cleanly.
            early = Some(e);
            break;
        }
        off = end;
    }
    let steps_at_rejection = early.is_some().then(|| session.stats().steps);
    match session.finish() {
        Outcome::Done(tree) => (Ok(tree.root().to_tree()), session.stats().steps),
        Outcome::Error(e) => {
            if let Some(early) = early {
                assert_eq!(early, e, "finish after an early rejection must replay the error");
                // A closed session does no further work.
                assert_eq!(Some(session.stats().steps), steps_at_rejection);
            }
            (Err(e), session.stats().steps)
        }
        Outcome::NeedInput { .. } => panic!("finish never returns NeedInput"),
    }
}

/// Chunk patterns for an input of length `len`: one-shot-as-one-chunk,
/// 1-byte, 7-byte, and three seeded random splits.
fn chunkings(len: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut out = vec![vec![len.max(1)], vec![1; len.max(1)], vec![7; len / 7 + 1]];
    for round in 0..3u64 {
        let mut sizes = Vec::new();
        let mut covered = 0;
        let mut x = mix(seed ^ mix(round + 1));
        while covered < len {
            x = mix(x);
            let sz = (x % 41 + 1) as usize;
            sizes.push(sz);
            covered += sz;
        }
        if sizes.is_empty() {
            sizes.push(1);
        }
        out.push(sizes);
    }
    out
}

/// The invariance assertion for one (grammar, input) pair.
fn assert_chunk_invariant(f: &Format, input: &[u8], seed: u64) {
    let (one_shot, stats) = f.vm.parse_with_stats(input);
    let one_shot = one_shot.map(|t| t.root().to_tree());
    for (i, chunks) in chunkings(input.len(), seed).into_iter().enumerate() {
        let (streamed, steps) = run_chunked(f.vm, input, &chunks);
        assert_eq!(
            steps,
            stats.steps,
            "{}: chunking #{i} diverges from one-shot step count ({} bytes)",
            f.name,
            input.len()
        );
        match (&one_shot, &streamed) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "{}: chunking #{i} built a different tree", f.name),
            (Err(a), Err(b)) => {
                assert_eq!(a, b, "{}: chunking #{i} reported a different error", f.name)
            }
            (a, b) => panic!(
                "{}: chunking #{i} disagrees on acceptance: one-shot {:?} vs streamed {:?}",
                f.name,
                a.is_ok(),
                b.is_ok()
            ),
        }
    }
}

#[test]
fn corpus_inputs_parse_identically_under_any_chunking() {
    for f in formats() {
        let input = default_corpus_input(f.name);
        assert_chunk_invariant(&f, &input, 1);
    }
}

#[test]
fn generated_inputs_parse_identically_under_any_chunking() {
    let n_seeds = if quick() { 2 } else { 6 };
    for f in formats() {
        let generator = ipg_gen::Generator::new(f.grammar);
        for seed in 0..n_seeds {
            let Some(input) = generator.generate_valid(seed) else {
                panic!("{}: generation failed for seed {seed}", f.name)
            };
            assert_chunk_invariant(&f, &input, seed);
        }
    }
}

#[test]
fn mutated_inputs_reject_identically_under_any_chunking() {
    let n_mutants = if quick() { 4 } else { 12 };
    for f in formats() {
        let base = default_corpus_input(f.name);
        for m in 0..n_mutants {
            let mut input = base.clone();
            let x = mix(0xfeed ^ mix(m));
            mutate(&mut input, (x >> 8) as u8, (x >> 16) as usize, x as u8);
            assert_chunk_invariant(&f, &input, m);
        }
    }
}

#[test]
fn empty_and_tiny_inputs_are_chunk_invariant() {
    for f in formats() {
        for input in [&b""[..], &b"\x00"[..], &b"PK"[..]] {
            assert_chunk_invariant(&f, input, 99);
        }
    }
}

/// The per-grammar anchor classification the streaming layer relies on.
/// This doubles as documentation: it is the table in the README. A
/// classification change (e.g. a spec edit making a format EOI-free) is a
/// deliberate, reviewable event.
#[test]
fn corpus_anchor_requirements_are_pinned() {
    use ipg_core::analysis::{anchor_requirement, AnchorRequirement};
    // The suffix constants are the formats' trailer sizes: ZIP's
    // end-of-central-directory record is 22 bytes, PDF's `%%EOF` plus the
    // startxref digits span the last 10, and DNS/GIF only use plain
    // rest-of-input intervals (k = 0, i.e. they just need the length).
    let expected: &[(&str, AnchorRequirement)] = &[
        ("zip", AnchorRequirement::Suffix { k: 22 }),
        ("zip_inflate", AnchorRequirement::Suffix { k: 22 }),
        ("dns", AnchorRequirement::Suffix { k: 0 }),
        ("png", AnchorRequirement::FullLength),
        ("gif", AnchorRequirement::Suffix { k: 0 }),
        ("elf", AnchorRequirement::FullLength),
        ("ipv4udp", AnchorRequirement::FullLength),
        ("pe", AnchorRequirement::Prefix),
        ("pdf", AnchorRequirement::Suffix { k: 10 }),
    ];
    for f in formats() {
        let anchor = anchor_requirement(f.grammar);
        assert_eq!(f.vm.anchor(), anchor, "{}: VmParser caches the analysis", f.name);
        let (_, want) = expected.iter().find(|(n, _)| *n == f.name).expect("all nine pinned");
        assert_eq!(anchor, *want, "{}: anchor classification changed (spec edit?)", f.name);
    }
}
