//! Cross-implementation agreement tests — the paper's own validation
//! method (§7): "the output parse tree was compared with Kaitai Struct's",
//! "the output of the modified readelf … was compared with the output of
//! the original readelf".
//!
//! For every format we sweep workload sizes and require the IPG parser,
//! the hand-written baseline, the Kaitai-style baseline, and the
//! Nail-style baseline (where each applies) to extract identical facts.

mod common;

use ipg_baselines::{handwritten, kaitai_style, nail_style};
use ipg_corpus::{dns, elf, gif, ipv4udp, pe, zip};

#[test]
fn zip_three_way_agreement() {
    for n in [1usize, 3, 17] {
        for method in [zip::Method::Stored, zip::Method::Deflate] {
            let a = zip::generate(&zip::Config {
                n_entries: n,
                payload_len: 1500,
                method,
                seed: n as u64,
            });
            let ipg = ipg_formats::zip::parse(&a.bytes).expect("ipg parses");
            let hand = handwritten::parse_zip(&a.bytes).expect("handwritten parses");
            let kaitai = kaitai_style::parse_zip(&a.bytes).expect("kaitai parses");
            assert_eq!(ipg.entries.len(), n);
            assert_eq!(hand.entries.len(), n);
            assert_eq!(kaitai.entries.len(), n);
            for i in 0..n {
                let e = &ipg.entries[i];
                let (hname, hmethod, hcrc, hbody) = &hand.entries[i];
                let k = &kaitai.entries[i];
                assert_eq!(&e.name, hname);
                assert_eq!(&e.name, &k.name);
                assert_eq!(e.method, *hmethod);
                assert_eq!(e.crc32, *hcrc);
                assert_eq!(e.crc32, k.crc);
                // IPG body span == handwritten borrowed body == kaitai copy.
                assert_eq!(&a.bytes[e.body.0..e.body.1], *hbody);
                assert_eq!(&a.bytes[e.body.0..e.body.1], k.body.as_slice());
            }
        }
    }
}

#[test]
fn unzip_extraction_agreement() {
    for n in [1usize, 5] {
        let a =
            zip::generate(&zip::Config { n_entries: n, payload_len: 3000, ..Default::default() });
        let ipg = ipg_formats::zip::extract(&a.bytes).expect("ipg extracts");
        let hand = handwritten::unzip(&a.bytes).expect("handwritten extracts");
        assert_eq!(ipg.len(), hand.len());
        for ((iname, idata), hfile) in ipg.iter().zip(&hand) {
            assert_eq!(iname, &hfile.name);
            assert_eq!(idata, &hfile.data);
            assert_eq!(idata, &a.payload);
        }
    }
}

#[test]
fn elf_three_way_agreement() {
    for (secs, syms) in [(1usize, 0usize), (4, 8), (16, 64)] {
        let f = elf::generate(&elf::Config {
            n_sections: secs,
            n_symbols: syms,
            n_dyn: 4,
            section_size: 128,
            seed: (secs + syms) as u64,
        });
        let ipg = ipg_formats::elf::parse(&f.bytes).expect("ipg parses");
        let hand = handwritten::parse_elf(&f.bytes).expect("handwritten parses");
        let kaitai = kaitai_style::parse_elf(&f.bytes).expect("kaitai parses");

        assert_eq!(ipg.shnum as usize, hand.sections.len());
        assert_eq!(ipg.shnum, kaitai.shnum as u64);
        for (is, hs) in ipg.sections.iter().zip(&hand.sections) {
            assert_eq!(is.sh_type, hs.sh_type);
            assert_eq!(is.offset, hs.offset);
            assert_eq!(is.size, hs.size);
        }
        // Symbol names across all three.
        let ipg_names: Vec<String> = ipg
            .sections
            .iter()
            .filter_map(|s| match &s.kind {
                ipg_formats::elf::SectionKind::Symbols(v) => Some(v),
                _ => None,
            })
            .flatten()
            .map(|s| s.name.clone().unwrap_or_default())
            .collect();
        let hand_names: Vec<String> = hand.symbols.iter().map(|&(n, _, _)| n.to_owned()).collect();
        assert_eq!(ipg_names, hand_names);
        assert_eq!(ipg_names, kaitai.symbol_names);
    }
}

#[test]
fn gif_agreement_with_kaitai_style() {
    for frames in [0usize, 1, 7] {
        let img = gif::generate(&gif::Config {
            n_frames: frames,
            seed: frames as u64 + 1,
            ..Default::default()
        });
        let ipg = ipg_formats::gif::parse(&img.bytes).expect("ipg parses");
        let kaitai = kaitai_style::parse_gif(&img.bytes).expect("kaitai parses");
        assert_eq!(ipg.width, kaitai.width);
        assert_eq!(ipg.height, kaitai.height);
        assert_eq!(ipg.gct_len, kaitai.gct.len());
        assert_eq!(ipg.blocks.len(), kaitai.blocks.len());
        for (ib, (intro, len)) in ipg.blocks.iter().zip(&kaitai.blocks) {
            match ib {
                ipg_formats::gif::GifBlock::Extension { data_len, .. } => {
                    assert_eq!(*intro, 0x21);
                    assert_eq!(data_len, len);
                }
                ipg_formats::gif::GifBlock::Image { data_len, .. } => {
                    assert_eq!(*intro, 0x2c);
                    assert_eq!(data_len, len);
                }
            }
        }
    }
}

#[test]
fn pe_agreement_with_kaitai_style() {
    for secs in [1usize, 5, 12] {
        let f =
            pe::generate(&pe::Config { n_sections: secs, seed: secs as u64, ..Default::default() });
        let ipg = ipg_formats::pe::parse(&f.bytes).expect("ipg parses");
        let kaitai = kaitai_style::parse_pe(&f.bytes).expect("kaitai parses");
        assert_eq!(ipg.sections.len(), kaitai.sections.len());
        for ((_, iptr, isize), (kptr, kbody)) in ipg.sections.iter().zip(&kaitai.sections) {
            assert_eq!(iptr, kptr);
            assert_eq!(*isize as usize, kbody.len());
        }
    }
}

#[test]
fn dns_agreement_with_nail_style() {
    for (q, a, compress) in [(1usize, 0usize, true), (1, 4, true), (2, 6, false), (3, 3, true)] {
        let m = dns::generate(&dns::Config {
            n_questions: q,
            n_answers: a,
            compress,
            seed: (q * 10 + a) as u64,
        });
        let ipg = ipg_formats::dns::parse(&m.bytes).expect("ipg parses");
        let nail = nail_style::parse_dns(&m.bytes).expect("nail parses");
        assert_eq!(ipg.id, nail.id);
        assert_eq!(ipg.questions.len(), nail.questions.len());
        assert_eq!(ipg.answers.len(), nail.answers.len());
        for i in 0..ipg.questions.len() {
            assert_eq!(ipg.questions[i].name, nail.question_name(i));
        }
        for i in 0..ipg.answers.len() {
            assert_eq!(ipg.answers[i].name, nail.answer_name(i));
            assert_eq!(
                &m.bytes[ipg.answers[i].rdata.0..ipg.answers[i].rdata.1],
                nail.arena.get(nail.answers[i].3)
            );
        }
    }
}

#[test]
fn ipv4udp_agreement_with_nail_style() {
    for (payload, options) in [(0usize, 0usize), (64, 0), (512, 3), (4096, 10)] {
        let p = ipv4udp::generate(&ipv4udp::Config {
            payload_len: payload,
            options_words: options,
            seed: payload as u64 + 1,
        });
        let ipg = ipg_formats::ipv4udp::parse(&p.bytes).expect("ipg parses");
        let nail = nail_style::parse_ipv4_udp(&p.bytes).expect("nail parses");
        assert_eq!(ipg.ihl, nail.ihl);
        assert_eq!(ipg.src, nail.src);
        assert_eq!(ipg.dst, nail.dst);
        assert_eq!(ipg.sport, nail.sport);
        assert_eq!(ipg.dport, nail.dport);
        assert_eq!(&p.bytes[ipg.payload.0..ipg.payload.1], nail.arena.get(nail.payload));
    }
}

#[test]
fn rejections_agree_on_corrupted_inputs() {
    // All implementations must reject the same corruptions (no silent
    // divergence — the motivating security property of the paper's intro).
    let mut z = common::default_corpus_input("zip");
    z[0] = b'Q'; // first local header magic
    assert!(ipg_formats::zip::parse(&z).is_err());
    assert!(handwritten::parse_zip(&z).is_err());
    assert!(kaitai_style::parse_zip(&z).is_err());

    let mut e = common::default_corpus_input("elf");
    e[0x28] = 0xff; // shoff low byte → table out of bounds
    e[0x2f] = 0xff; // shoff high byte
    assert!(ipg_formats::elf::parse(&e).is_err());
    assert!(handwritten::parse_elf(&e).is_err());
    assert!(kaitai_style::parse_elf(&e).is_err());
}
