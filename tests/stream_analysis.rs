//! The §8 streamability analysis applied to the real format grammars:
//! file formats built around random access must be flagged, and the
//! blockers must name the right causes.

use ipg_core::analysis::stream_analysis;

#[test]
fn directory_based_formats_are_not_streamable() {
    // ZIP starts at the *end* of the file; ELF and PE jump through offset
    // tables — all need random access.
    for grammar in [
        ipg_formats::zip::grammar(),
        ipg_formats::elf::grammar(),
        ipg_formats::pe::grammar(),
        ipg_formats::pdf::grammar(),
    ] {
        let report = stream_analysis(grammar);
        assert!(!report.streamable, "directory-based format wrongly deemed streamable");
    }
}

#[test]
fn zip_blockers_mention_the_eocd_random_access() {
    let report = stream_analysis(ipg_formats::zip::grammar());
    let zip_rule = report.rules.iter().find(|r| r.name == "ZIP").expect("ZIP analyzed");
    assert!(!zip_rule.streamable);
    // EOCD[EOI - 22, EOI] needs the input length.
    assert!(
        zip_rule.blockers.iter().any(|b| b.contains("EOI")),
        "blockers: {:?}",
        zip_rule.blockers
    );
}

#[test]
fn chunk_based_grammars_block_only_on_length_bounded_leaves() {
    // GIF's *structure* is sequential; what blocks pure streaming is that
    // leaf rules like `GCT := bytes` take a length-bounded buffer, plus
    // the switch over the color-table flag.
    let report = stream_analysis(ipg_formats::gif::grammar());
    let gif_rule = report.rules.iter().find(|r| r.name == "GIF").expect("GIF analyzed");
    assert!(gif_rule.streamable, "top-level GIF is sequential: {:?}", gif_rule.blockers);

    let blocks = report.rules.iter().find(|r| r.name == "Blocks").expect("Blocks analyzed");
    assert!(blocks.streamable, "chunk list is sequential: {:?}", blocks.blockers);
}

#[test]
fn packet_headers_are_sequential_except_length_checks() {
    // IPv4+UDP reads fields in order, but validates `tot <= EOI` — a check
    // that needs the datagram length (which a UDP stack does know, but a
    // pure byte stream does not).
    let report = stream_analysis(ipg_formats::ipv4udp::grammar());
    let pkt = report.rules.iter().find(|r| r.name == "Pkt").expect("Pkt analyzed");
    assert!(!pkt.streamable);
    assert!(pkt.blockers.iter().any(|b| b.contains("EOI")), "{:?}", pkt.blockers);
}

#[test]
fn dns_structure_is_left_to_right() {
    // DNS reads strictly left to right (counted sections, names, rdata);
    // only the `bytes` leaves need their length — which *is* available
    // from rdlen, so the structural rules must all pass.
    let report = stream_analysis(ipg_formats::dns::grammar());
    for name in ["DNS", "Hdr", "Q", "A", "Name", "Label", "Qs", "As"] {
        let rule = report
            .rules
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("rule {name} missing from report"));
        assert!(rule.streamable, "{name} blocked: {:?}", rule.blockers);
    }
}
