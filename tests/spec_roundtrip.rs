//! Round-trip the real format specifications through the pretty-printer:
//! `parse_surface(spec).to_string()` must itself check, pass termination
//! checking, and parse the corpus to the *same trees* as the original —
//! i.e. the printer loses nothing that matters on production grammars
//! (the random-grammar property test covers the notation; this covers the
//! real thing).

use ipg_core::frontend::{parse_grammar, parse_surface};
use ipg_core::interp::Parser;

fn roundtrip_and_compare(name: &str, spec: &str, sample: &[u8]) {
    let original = parse_grammar(spec).unwrap_or_else(|e| panic!("{name}: {e}"));
    let printed = parse_surface(spec).unwrap_or_else(|e| panic!("{name}: {e}")).to_string();
    let reparsed =
        parse_grammar(&printed).unwrap_or_else(|e| panic!("{name} (printed): {e}\n{printed}"));

    let report = ipg_core::termination::check_termination(&reparsed);
    assert!(report.ok, "{name}: printed grammar fails termination: {report:?}");

    let t1 = Parser::new(&original).parse(sample);
    let t2 = Parser::new(&reparsed).parse(sample);
    match (t1, t2) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "{name}: trees differ after roundtrip"),
        (Err(_), Err(_)) => {}
        (a, b) => panic!("{name}: outcome changed after roundtrip: {a:?} vs {b:?}"),
    }

    // And on garbage, both must reject identically.
    let garbage = b"\x00\x01garbage that is no format at all\xff\xfe";
    assert_eq!(
        Parser::new(&original).parse(garbage).is_ok(),
        Parser::new(&reparsed).parse(garbage).is_ok(),
        "{name}: rejection behaviour changed"
    );
}

#[test]
fn all_specs_roundtrip_through_the_pretty_printer() {
    let elf = ipg_corpus::elf::generate(&ipg_corpus::elf::Config::default()).bytes;
    let zip = ipg_corpus::zip::generate(&ipg_corpus::zip::Config::default()).bytes;
    let gif = ipg_corpus::gif::generate(&ipg_corpus::gif::Config::default()).bytes;
    let pe = ipg_corpus::pe::generate(&ipg_corpus::pe::Config::default()).bytes;
    let pdf = ipg_corpus::pdf::generate(&ipg_corpus::pdf::Config::default()).bytes;
    let dns = ipg_corpus::dns::generate(&ipg_corpus::dns::Config::default()).bytes;
    let udp = ipg_corpus::ipv4udp::generate(&ipg_corpus::ipv4udp::Config::default()).bytes;
    let png = ipg_corpus::png::generate(&ipg_corpus::png::Config::default()).bytes;

    roundtrip_and_compare("ELF", ipg_formats::elf::SPEC, &elf);
    roundtrip_and_compare("ZIP", ipg_formats::zip::SPEC, &zip);
    roundtrip_and_compare("GIF", ipg_formats::gif::SPEC, &gif);
    roundtrip_and_compare("PE", ipg_formats::pe::SPEC, &pe);
    roundtrip_and_compare("PDF", ipg_formats::pdf::SPEC, &pdf);
    roundtrip_and_compare("DNS", ipg_formats::dns::SPEC, &dns);
    roundtrip_and_compare("IPv4+UDP", ipg_formats::ipv4udp::SPEC, &udp);
    roundtrip_and_compare("PNG", ipg_formats::png::SPEC, &png);
}

#[test]
fn star_self_application_is_flagged_by_termination_checking() {
    // `S -> star S` would recurse on the same interval; the checker must
    // catch it (the star's runtime progress requirement is per-repetition,
    // not per-recursive-call).
    let g = parse_grammar("S -> star S;").unwrap();
    let report = ipg_core::termination::check_termination(&g);
    assert!(!report.ok, "star self-loop on [0, EOI] must be flagged");
}

#[test]
fn printed_specs_preserve_interval_statistics_totals() {
    // Pretty-printing makes every interval explicit, so the *counts* move
    // to the explicit column but the totals must be stable.
    for (name, spec) in ipg_formats::all_specs() {
        let g1 = parse_surface(spec).unwrap();
        let s1 = ipg_core::frontend::interval_stats(&g1);
        let g2 = parse_surface(&g1.to_string()).unwrap();
        let s2 = ipg_core::frontend::interval_stats(&g2);
        assert_eq!(s1.total, s2.total, "{name}: interval count changed in print");
        assert_eq!(s2.fully_inferred, 0, "{name}: printed specs are fully explicit");
    }
}
