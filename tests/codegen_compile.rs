//! End-to-end parser generator test: emit Rust source from a checked
//! grammar, compile it with `rustc`, run the compiled parser on corpus
//! files, and compare its output with the interpreter — the strongest
//! evidence that the generator implements the same semantics.

use std::io::Write as _;
use std::process::Command;

/// Compiles `parser_src` + a main that parses the file given as argv[1]
/// and prints the requested root attributes, then runs it on `input`.
/// Returns `(exit_ok, stdout)`.
fn compile_and_run(
    name: &str,
    parser_src: &str,
    attrs: &[&str],
    inputs: &[(&str, Vec<u8>)],
) -> Vec<(bool, String)> {
    let dir = std::env::temp_dir().join(format!("ipg_codegen_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let main_src = format!(
        r#"
fn main() {{
    let path = std::env::args().nth(1).expect("input path");
    let data = std::fs::read(path).expect("readable input");
    match parse(&data) {{
        Some(node) => {{
            {prints}
        }}
        None => std::process::exit(1),
    }}
}}
"#,
        prints = attrs
            .iter()
            .map(|a| format!("println!(\"{a}={{}}\", node.attr({a:?}).unwrap_or(-1));"))
            .collect::<Vec<_>>()
            .join("\n            ")
    );

    let src_path = dir.join("parser.rs");
    let mut f = std::fs::File::create(&src_path).expect("create source file");
    f.write_all(parser_src.as_bytes()).expect("write parser");
    f.write_all(main_src.as_bytes()).expect("write main");
    drop(f);

    let bin_path = dir.join("parser_bin");
    let out = Command::new("rustc")
        .args(["--edition", "2021", "-O", "-o"])
        .arg(&bin_path)
        .arg(&src_path)
        .output()
        .expect("rustc runs");
    assert!(
        out.status.success(),
        "generated parser failed to compile:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mut results = Vec::new();
    for (label, input) in inputs {
        let input_path = dir.join(format!("input_{label}"));
        std::fs::write(&input_path, input).expect("write input");
        let run = Command::new(&bin_path).arg(&input_path).output().expect("parser runs");
        results.push((run.status.success(), String::from_utf8_lossy(&run.stdout).into_owned()));
    }
    let _ = std::fs::remove_dir_all(&dir);
    results
}

#[test]
fn generated_ipv4udp_parser_agrees_with_interpreter() {
    let g = ipg_formats::ipv4udp::grammar();
    let src = ipg_core::codegen::generate_rust(g).expect("ipv4udp is codegen-compatible");

    let good = ipg_corpus::ipv4udp::generate(&ipg_corpus::ipv4udp::Config {
        payload_len: 300,
        options_words: 2,
        seed: 5,
    });
    let mut bad = good.bytes.clone();
    bad[9] = 6; // TCP → must be rejected

    let results = compile_and_run(
        "ipv4udp",
        &src,
        &["ihl", "tot"],
        &[("good", good.bytes.clone()), ("bad", bad)],
    );

    // Valid packet: generated parser accepts with the same attributes the
    // interpreter computes.
    let (ok, stdout) = &results[0];
    assert!(*ok, "generated parser rejected a valid packet");
    let parsed = ipg_formats::ipv4udp::parse(&good.bytes).expect("interpreter parses");
    assert!(stdout.contains(&format!("ihl={}", parsed.ihl)), "stdout: {stdout}");
    assert!(stdout.contains(&format!("tot={}", parsed.total_len)), "stdout: {stdout}");

    // Corrupted packet: both reject.
    assert!(!results[1].0, "generated parser accepted a TCP packet");
}

#[test]
fn generated_gif_parser_agrees_with_interpreter() {
    let g = ipg_formats::gif::grammar();
    let src = ipg_core::codegen::generate_rust(g).expect("gif is codegen-compatible");

    let good = ipg_corpus::gif::generate(&ipg_corpus::gif::Config {
        n_frames: 2,
        data_per_frame: 128,
        seed: 9,
        ..Default::default()
    });
    let mut bad = good.bytes.clone();
    let last = bad.len() - 1;
    bad[last] = 0x00; // clobber the trailer

    let results = compile_and_run("gif", &src, &[], &[("good", good.bytes.clone()), ("bad", bad)]);
    assert!(results[0].0, "generated parser rejected a valid GIF");
    assert!(!results[1].0, "generated parser accepted a GIF without trailer");
}

#[test]
fn codegen_golden_runtime_is_stable() {
    // The emitted runtime prelude must stay self-contained: no `use`
    // statements pulling external crates, and the public surface intact.
    let g = ipg_formats::pe::grammar();
    let src = ipg_core::codegen::generate_rust(g).expect("pe is codegen-compatible");
    assert!(src.contains("pub fn parse(input: &[u8]) -> Option<Node>"));
    assert!(src.contains("pub struct Node"));
    assert!(!src.contains("extern crate"));
    assert!(!src.contains("use ipg_core"));
}
