//! The `.ipgc` round-trip gate over the full corpus: for every one of the
//! nine grammars, compile → encode → decode → rebind must reproduce the
//! program *exactly* (byte-identical disassembly, identical anchor and
//! hints), the loaded VM must stay in lockstep with the reference
//! interpreter, and damaged artifacts must fail with a typed
//! [`ipg_core::error::Error::Artifact`] — never a panic.
//!
//! The per-field serialization tests live with the codec
//! (`ipg_core::ipgc`); this suite is the corpus-wide integration gate the
//! acceptance criteria name.

mod common;

use ipg_core::error::Error;
use ipg_core::interp::Parser;
use ipg_core::ipgc::{decode, encode, Cache, CachedProgram, FORMAT_VERSION, HEADER_LEN};
use ipg_formats::{corpus_descriptors, Registry};

/// Compile a corpus descriptor in memory (no cache I/O).
fn compiled(name: &str) -> (CachedProgram, &'static str) {
    let d = corpus_descriptors().into_iter().find(|d| d.name == name).expect("corpus name");
    (CachedProgram::compile(d.spec, (d.blackboxes)()).expect("corpus spec compiles"), d.spec)
}

#[test]
fn every_corpus_grammar_disassembles_identically_from_its_artifact() {
    for d in corpus_descriptors() {
        let (cached, spec) = compiled(d.name);
        let direct = cached.program.disassemble(&cached.grammar);

        let bytes = encode(spec, &cached.grammar, &cached.program, cached.anchor, cached.hints);
        let artifact = decode(&bytes).unwrap_or_else(|e| panic!("{}: decode failed: {e}", d.name));
        assert_eq!(artifact.anchor, cached.anchor, "{}: anchor drifted", d.name);
        assert_eq!(artifact.hints, cached.hints, "{}: size hints drifted", d.name);

        let grammar = artifact
            .reconstruct_grammar((d.blackboxes)())
            .unwrap_or_else(|e| panic!("{}: reconstruct failed: {e}", d.name));
        artifact
            .validate_against(&grammar)
            .unwrap_or_else(|e| panic!("{}: validation failed: {e}", d.name));
        let loaded = artifact.program.disassemble(&grammar);
        assert_eq!(loaded, direct, "{}: loaded disassembly is not byte-identical", d.name);
    }
}

#[test]
fn loaded_programs_agree_with_the_interpreter_on_corpus_inputs() {
    for d in corpus_descriptors() {
        let (cached, spec) = compiled(d.name);
        let bytes = encode(spec, &cached.grammar, &cached.program, cached.anchor, cached.hints);
        let artifact = decode(&bytes).expect("fresh artifact decodes");
        let grammar = artifact.reconstruct_grammar((d.blackboxes)()).expect("rebinds");
        let vm = artifact.into_parser(&grammar).expect("artifact becomes a parser");

        let parser = Parser::new(&grammar).max_steps(common::AGREE_FUEL);
        let input = common::default_corpus_input(d.name);
        match Registry::compare_engines(&parser, &vm, &input) {
            Ok(accepted) => assert!(accepted, "{}: corpus input must parse", d.name),
            Err(msg) => panic!("{}: loaded VM diverges from the interpreter: {msg}", d.name),
        }
    }
}

#[test]
fn racing_cache_writers_leave_exactly_one_valid_artifact() {
    let d = corpus_descriptors().into_iter().find(|d| d.name == "dns").expect("dns descriptor");
    let dir = std::env::temp_dir().join(format!("ipgc-race-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Eight threads race the same cold miss: every one compiles, writes
    // its own temp file, and renames over the same final path. The
    // invariant under test is that no interleaving can ever tear the
    // published artifact.
    const WRITERS: usize = 8;
    let barrier = std::sync::Barrier::new(WRITERS);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WRITERS)
            .map(|_| {
                let (barrier, dir) = (&barrier, &dir);
                scope.spawn(move || {
                    let cache = Cache::at(dir.clone());
                    barrier.wait();
                    cache
                        .load_or_compile(d.name, d.spec, (d.blackboxes)())
                        .expect("racing writer compiles")
                })
            })
            .collect();
        for h in handles {
            h.join().expect("racing writer panics");
        }
    });

    // Exactly one visible artifact, no leftover temp files, and the
    // survivor must verify end to end (digest and grammar cross-check).
    let names: Vec<String> = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .map(|e| e.expect("dir entry").file_name().to_string_lossy().into_owned())
        .collect();
    let artifacts: Vec<&String> = names.iter().filter(|n| n.ends_with(".ipgc")).collect();
    assert_eq!(artifacts.len(), 1, "expected one artifact, found {names:?}");
    assert!(
        !names.iter().any(|n| n.contains(".ipgc.tmp")),
        "temp files must not outlive their rename: {names:?}"
    );
    let bytes = std::fs::read(dir.join(artifacts[0])).expect("read survivor");
    ipg_core::ipgc::verify(&bytes, None, (d.blackboxes)())
        .unwrap_or_else(|e| panic!("survivor fails verification: {e}"));

    // And the next load is a clean hit — nothing was quarantined.
    let cache = Cache::at(dir.clone());
    let (_, outcome) = cache.load_or_compile(d.name, d.spec, (d.blackboxes)()).expect("reload");
    assert!(
        matches!(outcome, ipg_core::ipgc::CacheOutcome::Hit),
        "post-race load must hit: {outcome:?}"
    );
    assert_eq!(cache.quarantined(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_artifacts_fail_with_typed_errors_for_every_grammar() {
    for d in corpus_descriptors() {
        let (cached, spec) = compiled(d.name);
        let bytes = encode(spec, &cached.grammar, &cached.program, cached.anchor, cached.hints);

        // Bit flips across the artifact (sampled; the per-byte sweep runs
        // in the codec's unit tests). Bytes 8..16 hold the source hash,
        // which decode alone cannot check — it is verified against the
        // reconstructed grammar instead.
        for pos in (0..bytes.len()).step_by(97) {
            if (8..16).contains(&pos) {
                continue;
            }
            let mut bad = bytes.clone();
            bad[pos] ^= 0x20;
            match decode(&bad) {
                Err(Error::Artifact(_)) => {}
                Err(other) => {
                    panic!("{}: flip at {pos} gave a non-artifact error: {other}", d.name)
                }
                Ok(artifact) => {
                    // A flip inside the embedded spec keeps the payload
                    // checksum-consistent only if decode recomputed it —
                    // it cannot; reaching here means the flip must be
                    // caught by the grammar cross-check instead.
                    let grammar = match artifact.reconstruct_grammar((d.blackboxes)()) {
                        Ok(g) => g,
                        Err(_) => continue,
                    };
                    artifact.validate_against(&grammar).expect_err(&format!(
                        "{}: flip at {pos} survived decode AND validation",
                        d.name
                    ));
                }
            }
        }

        // Every truncation boundary around the header plus sampled payload
        // cuts must be typed errors.
        for len in (0..HEADER_LEN.min(bytes.len())).chain((HEADER_LEN..bytes.len()).step_by(211)) {
            match decode(&bytes[..len]) {
                Err(Error::Artifact(_)) => {}
                Err(other) => {
                    panic!("{}: truncation to {len} gave a non-artifact error: {other}", d.name)
                }
                Ok(_) => panic!("{}: truncation to {len} decoded", d.name),
            }
        }

        // Version skew: a future format version must be refused up front.
        let mut skewed = bytes.clone();
        skewed[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        match decode(&skewed) {
            Err(Error::Artifact(msg)) => {
                assert!(
                    msg.contains("version"),
                    "{}: skew error should name the version: {msg}",
                    d.name
                );
            }
            other => panic!("{}: version skew not refused: {other:?}", d.name),
        }
    }
}
