//! Cross-engine conformance fuzzing: grammar-driven generation + mutation.
//!
//! The paper validates IPG semantics against nine hand-curated inputs
//! (§7). This harness inverts each format grammar with `ipg-gen` and runs
//! the oracle matrix on the synthesized inputs:
//!
//! * **generation lane** — per grammar, ≥ 64 seeded generations must parse
//!   on both engines with identical trees, step counts and spans
//!   ([`common::assert_engines_agree`]);
//! * **mutation lane** — per grammar, ≥ 256 seeded mutants (bit flips,
//!   byte sets, truncations, extensions, length-field skew) must produce
//!   identical accept/reject outcomes and identical deepest errors across
//!   the engines;
//! * **baseline lane** — the handwritten/Kaitai/Nail baselines run on every
//!   generated input and mutant as probes: they must terminate without
//!   panicking (grammar-valid fuzz inputs are intentionally wilder than
//!   the corpus the baselines strictly agree on — see `agreement.rs`);
//! * **semantic lane** — generated `zip_inflate` archives, after the
//!   `ipg-gen` CRC fix-up, must survive full extraction (DEFLATE blackbox +
//!   CRC-32 check) and still keep the engines in agreement.
//!
//! Set `IPG_CONFORM_QUICK=1` (the CI smoke job does) for a reduced sweep.

mod common;

use ipg_gen::{mutate::mutate as gen_mutate, GenConfig, Generator};

/// `(generations, mutants per generation)` — full mode meets the
/// acceptance floor of 64 generations and 256 mutants per grammar.
fn params() -> (u64, u64) {
    if std::env::var_os("IPG_CONFORM_QUICK").is_some() {
        (12, 4)
    } else {
        (64, 4)
    }
}

fn conformance_for(name: &str) {
    let f = common::format(name);
    let (n_gens, n_mutants) = params();
    let generator = Generator::new(f.grammar).with_config(GenConfig::default());
    let mut gen_accepted = 0u64;
    let mut mutants_checked = 0u64;
    let mut baseline_accepts = 0u64;
    for seed in 0..n_gens {
        let bytes = generator
            .generate_valid(seed)
            .unwrap_or_else(|| panic!("{name}: generation failed for seed {seed}"));
        // Generation lane: both engines accept with identical trees/steps.
        assert!(
            common::assert_engines_agree(name, f.grammar, f.vm, &bytes),
            "{name}: seed {seed}: generated input was rejected"
        );
        gen_accepted += 1;
        // Baseline lane: probes terminate; record the accept matrix.
        baseline_accepts +=
            ipg_baselines::probe::run(name, &bytes).iter().filter(|o| o.accepted).count() as u64;
        // Mutation lane: engines react identically to every corruption.
        for m in 0..n_mutants {
            let mut mutant = bytes.clone();
            gen_mutate(&mut mutant, seed, m);
            common::assert_engines_agree(name, f.grammar, f.vm, &mutant);
            for o in ipg_baselines::probe::run(name, &mutant) {
                let _ = o.accepted; // termination without panic is the assertion
            }
            mutants_checked += 1;
        }
    }
    assert_eq!(gen_accepted, n_gens, "{name}: not all generations were accepted");
    assert_eq!(mutants_checked, n_gens * n_mutants, "{name}: mutation sweep incomplete");
    // `baseline_accepts` is informational (permissive grammar vs strict
    // baselines); it is asserted strictly on corpus inputs in agreement.rs.
    let _ = baseline_accepts;
}

macro_rules! conformance {
    ($test:ident, $name:expr) => {
        #[test]
        fn $test() {
            conformance_for($name);
        }
    };
}

conformance!(conform_zip, "zip");
conformance!(conform_zip_inflate, "zip_inflate");
conformance!(conform_dns, "dns");
conformance!(conform_png, "png");
conformance!(conform_gif, "gif");
conformance!(conform_elf, "elf");
conformance!(conform_ipv4udp, "ipv4udp");
conformance!(conform_pe, "pe");
conformance!(conform_pdf, "pdf");

/// Semantic lane: a generated archive is not just grammar-valid — after
/// the CRC fix-up it decompresses and passes the CRC-32 integrity check of
/// the full extraction pipeline (and the fix-up keeps engine agreement).
#[test]
fn conform_zip_inflate_extracts_after_crc_fixup() {
    let f = common::format("zip_inflate");
    let generator = Generator::new(f.grammar);
    let n = if std::env::var_os("IPG_CONFORM_QUICK").is_some() { 4u64 } else { 16 };
    for seed in 0..n {
        let mut bytes = generator
            .generate_valid(seed)
            .unwrap_or_else(|| panic!("zip_inflate: generation failed for seed {seed}"));
        ipg_gen::hooks::zip_fixup_crcs(&mut bytes);
        assert!(
            common::assert_engines_agree("zip_inflate", f.grammar, f.vm, &bytes),
            "seed {seed}: archive rejected after CRC fix-up"
        );
        let files = ipg_formats::zip::extract(&bytes)
            .unwrap_or_else(|e| panic!("seed {seed}: extraction failed: {e}"));
        assert!(!files.is_empty(), "seed {seed}: archive extracted no entries");
    }
}

/// The generator is deterministic: same grammar, same seed, same bytes.
#[test]
fn generation_is_deterministic() {
    for f in common::formats() {
        let generator = Generator::new(f.grammar);
        let a = generator.generate_valid(1234);
        let b = generator.generate_valid(1234);
        assert_eq!(a, b, "{}: generation is not deterministic", f.name);
        assert!(a.is_some(), "{}: seed 1234 failed", f.name);
    }
}

/// Distinct seeds explore distinct inputs (not a fixed template).
#[test]
fn seeds_diversify_generated_inputs() {
    for f in common::formats() {
        let generator = Generator::new(f.grammar);
        let inputs: Vec<Vec<u8>> =
            (0..8u64).filter_map(|seed| generator.generate_valid(seed)).collect();
        assert!(inputs.len() >= 8, "{}: seeds failed", f.name);
        let distinct: std::collections::HashSet<&Vec<u8>> = inputs.iter().collect();
        assert!(
            distinct.len() >= 4,
            "{}: only {} distinct inputs out of 8 seeds",
            f.name,
            distinct.len()
        );
    }
}
