//! Cross-crate property tests: for randomized generator configurations,
//! every IPG parser accepts its corpus and agrees with the baselines; and
//! no parser panics on mutated (corrupted) inputs — they must *fail*, not
//! crash (the paper's security motivation).

mod common;

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn zip_parses_for_any_config(
        n_entries in 1usize..12,
        payload_len in 1usize..3000,
        deflate in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let cfg = ipg_corpus::zip::Config {
            n_entries,
            payload_len,
            method: if deflate { ipg_corpus::zip::Method::Deflate } else { ipg_corpus::zip::Method::Stored },
            seed,
        };
        let a = ipg_corpus::zip::generate(&cfg);
        let parsed = ipg_formats::zip::parse(&a.bytes).expect("generated archives parse");
        prop_assert_eq!(parsed.entries.len(), n_entries);
        let files = ipg_formats::zip::extract(&a.bytes).expect("generated archives extract");
        for (_, data) in files {
            prop_assert_eq!(&data, &a.payload);
        }
    }

    #[test]
    fn elf_parses_for_any_config(
        n_sections in 0usize..10,
        n_symbols in 0usize..40,
        n_dyn in 0usize..10,
        section_size in 1usize..600,
        seed in 0u64..1000,
    ) {
        let f = ipg_corpus::elf::generate(&ipg_corpus::elf::Config {
            n_sections, n_symbols, n_dyn, section_size, seed,
        });
        let parsed = ipg_formats::elf::parse(&f.bytes).expect("generated files parse");
        prop_assert_eq!(parsed.shnum, f.summary.shnum as u64);
        let hand = ipg_baselines::handwritten::parse_elf(&f.bytes).expect("baseline parses");
        prop_assert_eq!(parsed.sections.len(), hand.sections.len());
    }

    #[test]
    fn gif_parses_for_any_config(
        n_frames in 0usize..8,
        gct in proptest::option::of(0u8..8),
        data_per_frame in 1usize..2000,
        seed in 0u64..1000,
    ) {
        let img = ipg_corpus::gif::generate(&ipg_corpus::gif::Config {
            n_frames,
            gct_bits: gct,
            data_per_frame,
            width: 100,
            height: 80,
            seed,
        });
        let parsed = ipg_formats::gif::parse(&img.bytes).expect("generated images parse");
        prop_assert_eq!(parsed.n_frames(), n_frames);
    }

    #[test]
    fn dns_parses_for_any_config(
        q in 1usize..4,
        a in 0usize..10,
        compress in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let m = ipg_corpus::dns::generate(&ipg_corpus::dns::Config {
            n_questions: q, n_answers: a, compress, seed,
        });
        let parsed = ipg_formats::dns::parse(&m.bytes).expect("generated messages parse");
        prop_assert_eq!(parsed.questions.len(), q);
        prop_assert_eq!(parsed.answers.len(), a);
    }

    #[test]
    fn pdf_parses_for_any_config(
        n_objects in 1usize..12,
        stream_len in 0usize..1500,
        seed in 0u64..1000,
    ) {
        let f = ipg_corpus::pdf::generate(&ipg_corpus::pdf::Config { n_objects, stream_len, seed });
        let parsed = ipg_formats::pdf::parse(&f.bytes).expect("generated documents parse");
        prop_assert_eq!(parsed.objects.len(), n_objects);
        prop_assert_eq!(parsed.xref_offset, f.summary.xref_offset);
    }

    #[test]
    fn mutated_zip_never_panics(
        idx_frac in 0.0f64..1.0,
        byte in any::<u8>(),
        seed in 0u64..50,
    ) {
        let mut a = ipg_corpus::zip::generate(&ipg_corpus::zip::Config {
            n_entries: 2, payload_len: 400, seed, ..Default::default()
        }).bytes;
        let idx = ((a.len() - 1) as f64 * idx_frac) as usize;
        a[idx] = byte;
        // Any of Ok/Err is fine; panicking, hanging, or engine divergence
        // is not (assert_engines_agree runs both engines fuel-bounded).
        let f = common::format("zip");
        common::assert_engines_agree(f.name, f.grammar, f.vm, &a);
        for o in ipg_baselines::probe::run("zip", &a) {
            let _ = o.accepted; // must terminate without panicking
        }
    }

    #[test]
    fn mutated_dns_never_panics(
        idx_frac in 0.0f64..1.0,
        byte in any::<u8>(),
        seed in 0u64..50,
    ) {
        let mut m = ipg_corpus::dns::generate(&ipg_corpus::dns::Config {
            n_questions: 1, n_answers: 3, compress: true, seed,
        }).bytes;
        let idx = ((m.len() - 1) as f64 * idx_frac) as usize;
        m[idx] = byte;
        let f = common::format("dns");
        common::assert_engines_agree(f.name, f.grammar, f.vm, &m);
        for o in ipg_baselines::probe::run("dns", &m) {
            let _ = o.accepted;
        }
    }

    #[test]
    fn mutated_elf_never_panics(
        idx_frac in 0.0f64..1.0,
        byte in any::<u8>(),
        seed in 0u64..50,
    ) {
        let mut f = ipg_corpus::elf::generate(&ipg_corpus::elf::Config {
            n_sections: 2, n_symbols: 4, section_size: 64, n_dyn: 2, seed,
        }).bytes;
        let idx = ((f.len() - 1) as f64 * idx_frac) as usize;
        f[idx] = byte;
        let fo = common::format("elf");
        common::assert_engines_agree(fo.name, fo.grammar, fo.vm, &f);
        for o in ipg_baselines::probe::run("elf", &f) {
            let _ = o.accepted;
        }
    }

    #[test]
    fn deflate_roundtrips_arbitrary_data(data in proptest::collection::vec(any::<u8>(), 0..4000)) {
        let packed = ipg_flate::compress(&data);
        prop_assert_eq!(ipg_flate::inflate(&packed).expect("own output inflates"), data.clone());
        let stored = ipg_flate::compress_stored(&data);
        prop_assert_eq!(ipg_flate::inflate(&stored).expect("stored inflates"), data);
    }

    #[test]
    fn mutated_deflate_never_panics(
        data in proptest::collection::vec(any::<u8>(), 1..2000),
        idx_frac in 0.0f64..1.0,
        byte in any::<u8>(),
    ) {
        let mut packed = ipg_flate::compress(&data);
        let idx = ((packed.len() - 1) as f64 * idx_frac) as usize;
        packed[idx] = byte;
        let _ = ipg_flate::inflate_with_limit(&packed, 1 << 22);
    }
}
