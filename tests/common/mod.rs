//! Helpers shared by the cross-engine and cross-implementation test
//! suites (`agreement.rs`, `vm_differential.rs`, `properties.rs`,
//! `conformance.rs`, `regressions.rs`) and the CLI expect-tests: the
//! nine-grammar format table, default corpus inputs, the seeded input
//! mutator, the interpreter-vs-VM agreement assertion (trees, step
//! counts, errors), and the one `UPDATE_SNAPSHOTS=1` expect-file helper
//! every snapshot suite blesses through.

#![allow(dead_code)] // each integration-test binary uses a subset

use ipg_core::check::Grammar;
use ipg_core::interp::vm::VmParser;
use ipg_core::interp::Parser;
use ipg_formats::Registry;
use std::path::Path;
use std::sync::OnceLock;

/// Step fuel for every engine run in the test suites: orders of magnitude
/// above any real parse of these grammars, so a pathological loop (e.g. a
/// termination-checker regression surfaced by a mutant) fails cleanly with
/// both engines reporting the identical "step limit exhausted" error
/// instead of hanging the test binary.
pub const AGREE_FUEL: u64 = 50_000_000;

/// One corpus-backed format grammar with its compiled VM.
pub struct Format {
    /// `ipg-formats` module name (also the `ipg_baselines::probe` key).
    pub name: &'static str,
    /// The checked grammar (tree-walking interpreter side).
    pub grammar: &'static Grammar,
    /// The compiled bytecode parser.
    pub vm: &'static VmParser<'static>,
}

/// Fuel-bounded VM per grammar, compiled once per test binary (grammars
/// come from the shared pinned corpus, i.e. through the `.ipgc`
/// artifact pipeline).
fn fueled_vms() -> &'static [(String, &'static Grammar, VmParser<'static>)] {
    static VMS: OnceLock<Vec<(String, &'static Grammar, VmParser<'static>)>> = OnceLock::new();
    VMS.get_or_init(|| {
        ipg_formats::pinned_corpus()
            .iter()
            .map(|e| {
                (e.name.clone(), e.grammar(), VmParser::new(e.grammar()).max_steps(AGREE_FUEL))
            })
            .collect()
    })
}

/// All nine format grammars under differential test (the registry lives in
/// [`ipg_formats::Registry::corpus`]; this view carries the fuel-bounded
/// VMs).
pub fn formats() -> Vec<Format> {
    fueled_vms().iter().map(|e| Format { name: e.0.as_str(), grammar: e.1, vm: &e.2 }).collect()
}

/// Looks up a format by name.
pub fn format(name: &str) -> Format {
    formats().into_iter().find(|f| f.name == name).unwrap_or_else(|| panic!("no format {name}"))
}

/// A default-config corpus input for the named format (the deterministic
/// "known-realistic" lane; `zip_inflate` shares the ZIP corpus).
pub fn default_corpus_input(name: &str) -> Vec<u8> {
    match name {
        "zip" | "zip_inflate" => ipg_corpus::zip::generate(&Default::default()).bytes,
        "dns" => ipg_corpus::dns::generate(&Default::default()).bytes,
        "png" => ipg_corpus::png::generate(&Default::default()).bytes,
        "gif" => ipg_corpus::gif::generate(&Default::default()).bytes,
        "elf" => ipg_corpus::elf::generate(&Default::default()).bytes,
        "ipv4udp" => ipg_corpus::ipv4udp::generate(&Default::default()).bytes,
        "pe" => ipg_corpus::pe::generate(&Default::default()).bytes,
        "pdf" => ipg_corpus::pdf::generate(&Default::default()).bytes,
        other => panic!("no corpus generator for {other}"),
    }
}

/// A deterministic input mutation, driven by externally chosen parameters
/// (proptest strategies or seeded loops).
pub fn mutate(bytes: &mut Vec<u8>, kind: u8, pos: usize, value: u8) {
    if bytes.is_empty() {
        return;
    }
    match kind % 4 {
        0 => {}                                 // pristine
        1 => bytes.truncate(pos % bytes.len()), // truncation
        2 => {
            let p = pos % bytes.len();
            bytes[p] ^= value | 1; // guaranteed change
        }
        _ => {
            // Splice: overwrite a short run, simulating a corrupted field.
            let p = pos % bytes.len();
            let end = (p + 4).min(bytes.len());
            for b in &mut bytes[p..end] {
                *b = value;
            }
        }
    }
}

/// Asserts that the tree-walking interpreter and the bytecode VM agree on
/// `input` in every observable way:
///
/// * **step counts** — both engines tick at the same evaluation points;
/// * **trees** — `TreeRef::to_tree` of the VM result must equal the
///   interpreter's `Rc<Tree>` node for node (shape, every attribute
///   environment including `start`/`end`, spans, chosen alternatives,
///   blackbox payloads);
/// * **errors** — rejected inputs must produce the identical deepest
///   failure (offset, nonterminal, message).
///
/// Returns whether the input was accepted.
pub fn assert_engines_agree(name: &str, g: &Grammar, vm: &VmParser<'_>, input: &[u8]) -> bool {
    let parser = Parser::new(g).max_steps(AGREE_FUEL);
    match Registry::compare_engines(&parser, vm, input) {
        Ok(accepted) => accepted,
        Err(msg) => panic!("{name}: {msg}"),
    }
}

/// The one expect-file helper every snapshot suite shares: compares
/// `actual` against the golden file at `dir/name`, or rewrites it when
/// `UPDATE_SNAPSHOTS=1` is set. Used by the bytecode-listing snapshots,
/// the `.ipgc` disasm round-trip gate, and the CLI stdout/stderr
/// expect-tests — one blessing flow for all of them:
///
/// ```text
/// UPDATE_SNAPSHOTS=1 cargo test --workspace
/// ```
pub fn check_snapshot(dir: &Path, name: &str, actual: &str) {
    let path = dir.join(name);
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(dir).unwrap();
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot {path:?} ({e}); run with UPDATE_SNAPSHOTS=1"));
    assert!(
        actual == expected,
        "snapshot {name} changed.\n\
         If intentional, regenerate with `UPDATE_SNAPSHOTS=1 cargo test`\n\
         and review the diff.\n\n--- expected\n{expected}\n--- actual\n{actual}"
    );
}
