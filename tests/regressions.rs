//! Minimized regression inputs from conformance-fuzzing development.
//!
//! **Engine divergences found so far: none.** The development sweep behind
//! this PR ran 256 grammar-driven generations × 16 mutants for each of the
//! nine corpus grammars (36 864 mutants total) through both engines with
//! tree/step/error comparison and found zero interpreter-vs-VM divergences
//! and zero panics. When the harness (or a future fuzzing session) does
//! find one, the protocol is: minimize the input, add it here as a byte
//! literal with a comment naming the root cause, and keep it forever.
//!
//! Until then this file pins (a) the deterministic degenerate inputs that
//! exercise the rejection path through every engine pairing, and (b) the
//! two *generator-infrastructure* bugs development did find — both are the
//! kind of silent-degradation bug that only a pinned regression keeps dead.

mod common;

#[test]
fn degenerate_inputs_agree_across_engines() {
    // Empty input, one byte, and a filler-only buffer: every grammar must
    // reject (none accepts the empty string) and both engines must agree
    // on the exact deepest error. These are the minimal members of every
    // mutation orbit (truncation to zero), so they stay pinned explicitly.
    for f in common::formats() {
        for input in [&b""[..], &b"\x00"[..], &[b'.'; 64][..]] {
            let accepted = common::assert_engines_agree(f.name, f.grammar, f.vm, input);
            assert!(!accepted, "{}: degenerate input unexpectedly accepted", f.name);
        }
    }
}

/// Regression (generator infrastructure, found 2026-07): seeding the
/// SplitMix64-backed `StdRng` with `seed * 0x9e3779b97f4a7c15` — the
/// generator's own gamma constant — made the streams of consecutive seeds
/// shifted copies of each other, collapsing seeds 0..=3 of the GIF grammar
/// onto byte-identical outputs. Seeds are now hashed through a murmur-style
/// finalizer. This pins the observable symptom.
#[test]
fn regression_seed_aliasing_produces_distinct_inputs() {
    let f = common::format("gif");
    let generator = ipg_gen::Generator::new(f.grammar);
    let a = generator.generate_valid(0).expect("seed 0");
    let b = generator.generate_valid(1).expect("seed 1");
    let c = generator.generate_valid(2).expect("seed 2");
    assert!(a != b || b != c, "consecutive seeds collapsed onto one input");
}

/// Regression (mutator, found 2026-07 while writing the harness): the
/// mutation driver must actually perturb — a seed/index pairing that maps
/// overwhelmingly onto the `pristine` arm turns the 256-mutant acceptance
/// floor into a no-op sweep. Pinned: across 64 mutants of a fixed buffer,
/// at least three quarters must differ from the original.
#[test]
fn regression_mutation_sweep_is_not_a_noop() {
    let base = common::default_corpus_input("dns");
    let mut changed = 0;
    for m in 0..64u64 {
        let mut mutant = base.clone();
        ipg_gen::mutate::mutate(&mut mutant, 99, m);
        if mutant != base {
            changed += 1;
        }
    }
    assert!(changed >= 48, "only {changed}/64 mutants differed from the base input");
}
