//! Minimized regression inputs from conformance-fuzzing development.
//!
//! **Engine divergences found so far: none.** The development sweep behind
//! this PR ran 256 grammar-driven generations × 16 mutants for each of the
//! nine corpus grammars (36 864 mutants total) through both engines with
//! tree/step/error comparison and found zero interpreter-vs-VM divergences
//! and zero panics. When the harness (or a future fuzzing session) does
//! find one, the protocol is: minimize the input, add it here as a byte
//! literal with a comment naming the root cause, and keep it forever.
//!
//! Until then this file pins (a) the deterministic degenerate inputs that
//! exercise the rejection path through every engine pairing, and (b) the
//! two *generator-infrastructure* bugs development did find — both are the
//! kind of silent-degradation bug that only a pinned regression keeps dead.

mod common;

#[test]
fn degenerate_inputs_agree_across_engines() {
    // Empty input, one byte, and a filler-only buffer: every grammar must
    // reject (none accepts the empty string) and both engines must agree
    // on the exact deepest error. These are the minimal members of every
    // mutation orbit (truncation to zero), so they stay pinned explicitly.
    for f in common::formats() {
        for input in [&b""[..], &b"\x00"[..], &[b'.'; 64][..]] {
            let accepted = common::assert_engines_agree(f.name, f.grammar, f.vm, input);
            assert!(!accepted, "{}: degenerate input unexpectedly accepted", f.name);
        }
    }
}

/// Regression (generator infrastructure, found 2026-07): seeding the
/// SplitMix64-backed `StdRng` with `seed * 0x9e3779b97f4a7c15` — the
/// generator's own gamma constant — made the streams of consecutive seeds
/// shifted copies of each other, collapsing seeds 0..=3 of the GIF grammar
/// onto byte-identical outputs. Seeds are now hashed through a murmur-style
/// finalizer. This pins the observable symptom.
#[test]
fn regression_seed_aliasing_produces_distinct_inputs() {
    let f = common::format("gif");
    let generator = ipg_gen::Generator::new(f.grammar);
    let a = generator.generate_valid(0).expect("seed 0");
    let b = generator.generate_valid(1).expect("seed 1");
    let c = generator.generate_valid(2).expect("seed 2");
    assert!(a != b || b != c, "consecutive seeds collapsed onto one input");
}

/// Session-abuse coverage: every way a caller (or a hostile peer behind
/// `ipg-serve`) can misuse a streaming session must produce a clean
/// [`ipg_core::Error`], never a panic and never a wedged session.
mod session_abuse {
    use ipg_core::interp::vm::Outcome;
    use ipg_core::Error;

    /// Fuel exhaustion mid-stream and at finish reports the same "step
    /// limit" error the one-shot engines report, and the session stays
    /// closed (poisoned) afterwards.
    #[test]
    fn fuel_exhaustion_is_a_clean_terminal_error() {
        let f = super::common::format("zip");
        let input = super::common::default_corpus_input("zip");
        let mut session = f.vm.streaming().max_steps(3);
        for chunk in input.chunks(16) {
            if let Outcome::Error(e) = session.feed(chunk) {
                panic!("fuel cannot run out while suspended pre-finish: {e}");
            }
        }
        match session.finish() {
            Outcome::Error(Error::Parse(pe)) => {
                assert!(pe.msg.contains("step limit"), "unexpected message: {}", pe.msg)
            }
            other => panic!("expected a fuel error, got {other:?}"),
        }
        // Poisoned: further use replays a clean error.
        assert!(matches!(session.feed(b"more"), Outcome::Error(_)));
        assert!(matches!(session.finish(), Outcome::Error(_)));
    }

    /// Byte budgets poison the session exactly at the cap.
    #[test]
    fn byte_budget_is_enforced_at_the_cap() {
        let f = super::common::format("dns");
        let mut session = f.vm.streaming().max_bytes(8);
        assert!(matches!(session.feed(&[0u8; 8]), Outcome::NeedInput { .. }));
        match session.feed(&[0u8; 1]) {
            Outcome::Error(Error::Session(msg)) => {
                assert!(msg.contains("byte budget"), "unexpected message: {msg}")
            }
            other => panic!("expected a byte-budget error, got {other:?}"),
        }
        assert!(matches!(session.finish(), Outcome::Error(_)));
    }

    /// Feeding or finishing after `Done` returns a session error and does
    /// not disturb the delivered result.
    #[test]
    fn use_after_done_is_a_clean_error() {
        let f = super::common::format("dns");
        let input = super::common::default_corpus_input("dns");
        let mut session = f.vm.streaming();
        assert!(!matches!(session.feed(&input), Outcome::Error(_)));
        let Outcome::Done(tree) = session.finish() else { panic!("corpus input parses") };
        assert!(!tree.arena().is_empty());
        assert!(session.is_closed());
        for _ in 0..2 {
            match session.feed(b"late") {
                Outcome::Error(Error::Session(msg)) => {
                    assert!(msg.contains("delivered"), "unexpected message: {msg}")
                }
                other => panic!("expected a session error, got {other:?}"),
            }
        }
        assert!(matches!(session.finish(), Outcome::Error(Error::Session(_))));
    }

    /// Feeding after a determined rejection replays the same parse error.
    #[test]
    fn use_after_error_replays_the_rejection() {
        let f = super::common::format("gif");
        let mut session = f.vm.streaming();
        // A GIF must start with "GIF8"; this prefix is a determined
        // rejection long before end-of-input.
        let first = match session.feed(b"definitely-not-a-gif-header") {
            Outcome::Error(e) => e,
            other => panic!("expected a determined rejection, got {other:?}"),
        };
        match (session.feed(b"more"), session.finish()) {
            (Outcome::Error(a), Outcome::Error(b)) => {
                assert_eq!(a, first);
                assert_eq!(b, first);
            }
            other => panic!("expected replayed errors, got {other:?}"),
        }
    }

    /// Truncation at *every* boundary of real `dns` and `zip` corpus
    /// inputs: each prefix must finish with exactly the one-shot VM's
    /// verdict on that prefix — no panics, no divergence, no wedged
    /// state. (This is the streaming analogue of the truncation orbit in
    /// the conformance sweep.)
    #[test]
    fn truncation_at_every_boundary_is_clean() {
        for name in ["dns", "zip"] {
            let f = super::common::format(name);
            let input = super::common::default_corpus_input(name);
            for cut in 0..=input.len() {
                let prefix = &input[..cut];
                let one_shot = f.vm.parse(prefix);
                let mut session = f.vm.streaming();
                let mut early = None;
                if let Outcome::Error(e) = session.feed(prefix) {
                    early = Some(e);
                }
                let streamed = match session.finish() {
                    Outcome::Done(tree) => Ok(tree),
                    Outcome::Error(e) => Err(e),
                    Outcome::NeedInput { .. } => {
                        panic!("{name}: finish returned NeedInput at cut {cut}")
                    }
                };
                match (one_shot, streamed) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(
                            a.root().to_tree(),
                            b.root().to_tree(),
                            "{name}: tree mismatch at cut {cut}"
                        );
                        assert!(early.is_none());
                    }
                    (Err(a), Err(b)) => {
                        assert_eq!(a, b, "{name}: error mismatch at cut {cut}");
                        if let Some(e) = early {
                            assert_eq!(e, b, "{name}: early error differs at cut {cut}");
                        }
                    }
                    (a, b) => panic!(
                        "{name}: acceptance mismatch at cut {cut}: one-shot {} vs streamed {}",
                        a.is_ok(),
                        b.is_ok()
                    ),
                }
            }
        }
    }

    /// Deadline eviction lives in the service layer: an evicted session's
    /// id answers with a clean session error (covered end-to-end in
    /// `crates/ipg-serve/tests/serve.rs`); this pins the error type it
    /// relies on.
    #[test]
    fn session_error_variant_displays_cleanly() {
        let e = Error::Session("evicted".into());
        assert_eq!(e.to_string(), "session error: evicted");
        assert_eq!(e.clone(), e);
    }
}

/// Regression (mutator, found 2026-07 while writing the harness): the
/// mutation driver must actually perturb — a seed/index pairing that maps
/// overwhelmingly onto the `pristine` arm turns the 256-mutant acceptance
/// floor into a no-op sweep. Pinned: across 64 mutants of a fixed buffer,
/// at least three quarters must differ from the original.
#[test]
fn regression_mutation_sweep_is_not_a_noop() {
    let base = common::default_corpus_input("dns");
    let mut changed = 0;
    for m in 0..64u64 {
        let mut mutant = base.clone();
        ipg_gen::mutate::mutate(&mut mutant, 99, m);
        if mutant != base {
            changed += 1;
        }
    }
    assert!(changed >= 48, "only {changed}/64 mutants differed from the base input");
}
