//! Expect-test snapshots of the lowered bytecode listings.
//!
//! The flat program a grammar compiles to is part of the VM's interface:
//! lowering changes should be *visible* in review, not incidental. These
//! tests pin the full [`ipg_core::bytecode::Program::disassemble`] output
//! for all nine corpus grammars against golden files under
//! `tests/snapshots/` — DNS (local rules, counted chains), `zip_inflate`
//! (blackbox rules, switch dispatch), ZIP/PDF (backward parsing), ELF/PE
//! (directory random access), GIF (chunk chains), PNG (`star`), IPv4+UDP
//! (predicates).
//!
//! When a lowering change is intentional, regenerate the goldens with
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test --test bytecode_snapshot
//! ```
//!
//! and review the diff like any other code change.

use std::path::PathBuf;

mod common;

fn snapshot_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/snapshots")
}

macro_rules! snapshot {
    ($test:ident, $name:expr, $file:expr) => {
        #[test]
        fn $test() {
            let f = common::format($name);
            let listing = f.vm.program().disassemble(f.grammar);
            common::check_snapshot(&snapshot_dir(), $file, &listing);
        }
    };
}

snapshot!(dns_bytecode_listing_is_pinned, "dns", "dns.bc.txt");
snapshot!(zip_inflate_bytecode_listing_is_pinned, "zip_inflate", "zip_inflate.bc.txt");
snapshot!(zip_bytecode_listing_is_pinned, "zip", "zip.bc.txt");
snapshot!(png_bytecode_listing_is_pinned, "png", "png.bc.txt");
snapshot!(gif_bytecode_listing_is_pinned, "gif", "gif.bc.txt");
snapshot!(elf_bytecode_listing_is_pinned, "elf", "elf.bc.txt");
snapshot!(ipv4udp_bytecode_listing_is_pinned, "ipv4udp", "ipv4udp.bc.txt");
snapshot!(pe_bytecode_listing_is_pinned, "pe", "pe.bc.txt");
snapshot!(pdf_bytecode_listing_is_pinned, "pdf", "pdf.bc.txt");
