//! Expect-test snapshots of the lowered bytecode listings.
//!
//! The flat program a grammar compiles to is part of the VM's interface:
//! lowering changes should be *visible* in review, not incidental. These
//! tests pin the full [`ipg_core::bytecode::Program::disassemble`] output
//! for two representative grammars — DNS (local rules, counted chains,
//! switch dispatch) and `zip_inflate` (blackbox rules, backward parsing)
//! — against golden files under `tests/snapshots/`.
//!
//! When a lowering change is intentional, regenerate the goldens with
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test --test bytecode_snapshot
//! ```
//!
//! and review the diff like any other code change.

use std::path::PathBuf;

fn check_snapshot(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/snapshots").join(name);
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot {path:?} ({e}); run with UPDATE_SNAPSHOTS=1"));
    assert!(
        actual == expected,
        "bytecode listing for {name} changed.\n\
         If intentional, regenerate with `UPDATE_SNAPSHOTS=1 cargo test --test bytecode_snapshot`\n\
         and review the diff.\n\n--- expected\n{expected}\n--- actual\n{actual}"
    );
}

#[test]
fn dns_bytecode_listing_is_pinned() {
    let g = ipg_formats::dns::grammar();
    let listing = ipg_formats::dns::vm().program().disassemble(g);
    check_snapshot("dns.bc.txt", &listing);
}

#[test]
fn zip_inflate_bytecode_listing_is_pinned() {
    let g = ipg_formats::zip::grammar_inflate();
    let listing = ipg_formats::zip::vm_inflate().program().disassemble(g);
    check_snapshot("zip_inflate.bc.txt", &listing);
}
