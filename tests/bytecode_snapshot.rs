//! Expect-test snapshots of the lowered bytecode listings.
//!
//! The flat program a grammar compiles to is part of the VM's interface:
//! lowering changes should be *visible* in review, not incidental. These
//! tests pin the full [`ipg_core::bytecode::Program::disassemble`] output
//! for all nine corpus grammars against golden files under
//! `tests/snapshots/` — DNS (local rules, counted chains), `zip_inflate`
//! (blackbox rules, switch dispatch), ZIP/PDF (backward parsing), ELF/PE
//! (directory random access), GIF (chunk chains), PNG (`star`), IPv4+UDP
//! (predicates).
//!
//! When a lowering change is intentional, regenerate the goldens with
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test --test bytecode_snapshot
//! ```
//!
//! and review the diff like any other code change.

use std::path::PathBuf;

fn check_snapshot(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/snapshots").join(name);
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot {path:?} ({e}); run with UPDATE_SNAPSHOTS=1"));
    assert!(
        actual == expected,
        "bytecode listing for {name} changed.\n\
         If intentional, regenerate with `UPDATE_SNAPSHOTS=1 cargo test --test bytecode_snapshot`\n\
         and review the diff.\n\n--- expected\n{expected}\n--- actual\n{actual}"
    );
}

mod common;

macro_rules! snapshot {
    ($test:ident, $name:expr, $file:expr) => {
        #[test]
        fn $test() {
            let f = common::format($name);
            let listing = f.vm.program().disassemble(f.grammar);
            check_snapshot($file, &listing);
        }
    };
}

snapshot!(dns_bytecode_listing_is_pinned, "dns", "dns.bc.txt");
snapshot!(zip_inflate_bytecode_listing_is_pinned, "zip_inflate", "zip_inflate.bc.txt");
snapshot!(zip_bytecode_listing_is_pinned, "zip", "zip.bc.txt");
snapshot!(png_bytecode_listing_is_pinned, "png", "png.bc.txt");
snapshot!(gif_bytecode_listing_is_pinned, "gif", "gif.bc.txt");
snapshot!(elf_bytecode_listing_is_pinned, "elf", "elf.bc.txt");
snapshot!(ipv4udp_bytecode_listing_is_pinned, "ipv4udp", "ipv4udp.bc.txt");
snapshot!(pe_bytecode_listing_is_pinned, "pe", "pe.bc.txt");
snapshot!(pdf_bytecode_listing_is_pinned, "pdf", "pdf.bc.txt");
