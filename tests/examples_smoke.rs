//! Smoke test: every example must run cleanly end to end. The examples
//! generate their own tiny corpus inputs when invoked without a path, so
//! each invocation exercises generator → grammar → extractor in one go;
//! `check_grammar` is pointed at an embedded `.ipg` spec.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn run_example(name: &str, args: &[&str]) {
    run_example_with_stdin(name, args, None);
}

fn run_example_with_stdin(name: &str, args: &[&str], stdin: Option<&[u8]>) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
    let mut cmd = Command::new(cargo);
    cmd.current_dir(env!("CARGO_MANIFEST_DIR"))
        .args(["run", "--quiet", "--example", name, "--"])
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    if stdin.is_some() {
        cmd.stdin(Stdio::piped());
    }
    let mut child =
        cmd.spawn().unwrap_or_else(|e| panic!("failed to spawn cargo for example `{name}`: {e}"));
    if let Some(bytes) = stdin {
        child.stdin.take().expect("piped stdin").write_all(bytes).expect("write stdin");
    }
    let out = child.wait_with_output().expect("wait for example");
    assert!(
        out.status.success(),
        "example `{name}` exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    assert!(!out.stdout.is_empty(), "example `{name}` printed nothing");
}

#[test]
fn quickstart_runs() {
    run_example("quickstart", &[]);
}

#[test]
fn unzip_runs() {
    run_example("unzip", &[]);
}

#[test]
fn elf_inspect_runs() {
    run_example("elf_inspect", &[]);
}

#[test]
fn gif_info_runs() {
    run_example("gif_info", &[]);
}

#[test]
fn dns_dump_runs() {
    run_example("dns_dump", &[]);
}

#[test]
fn pdf_info_runs() {
    run_example("pdf_info", &[]);
}

#[test]
fn check_grammar_runs_on_an_embedded_spec() {
    run_example("check_grammar", &["crates/ipg-formats/specs/gif.ipg"]);
}

#[test]
fn ipg_parse_runs_on_a_self_generated_input() {
    run_example("ipg_parse", &["dns"]);
}

#[test]
fn ipg_parse_streams_stdin_through_a_session() {
    let archive = ipg_corpus::zip::generate(&Default::default()).bytes;
    run_example_with_stdin("ipg_parse", &["zip", "-"], Some(&archive));
}
