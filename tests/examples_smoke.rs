//! Smoke test: the one remaining example must run cleanly end to end.
//! (The former per-format examples are subcommands of the `ipg` binary
//! now, smoke-tested in `crates/ipg-cli/tests/cli.rs`.)

use std::process::{Command, Stdio};

#[test]
fn quickstart_runs() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
    let out = Command::new(cargo)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .args(["run", "--quiet", "--example", "quickstart"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn cargo for example `quickstart`");
    assert!(
        out.status.success(),
        "example `quickstart` exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    assert!(!out.stdout.is_empty(), "example `quickstart` printed nothing");
}
