//! Smoke test: every example must run cleanly end to end. The examples
//! generate their own tiny corpus inputs when invoked without a path, so
//! each invocation exercises generator → grammar → extractor in one go;
//! `check_grammar` is pointed at an embedded `.ipg` spec.

use std::process::Command;

fn run_example(name: &str, args: &[&str]) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
    let out = Command::new(cargo)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .args(["run", "--quiet", "--example", name, "--"])
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example `{name}`: {e}"));
    assert!(
        out.status.success(),
        "example `{name}` exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    assert!(!out.stdout.is_empty(), "example `{name}` printed nothing");
}

#[test]
fn quickstart_runs() {
    run_example("quickstart", &[]);
}

#[test]
fn unzip_runs() {
    run_example("unzip", &[]);
}

#[test]
fn elf_inspect_runs() {
    run_example("elf_inspect", &[]);
}

#[test]
fn gif_info_runs() {
    run_example("gif_info", &[]);
}

#[test]
fn dns_dump_runs() {
    run_example("dns_dump", &[]);
}

#[test]
fn pdf_info_runs() {
    run_example("pdf_info", &[]);
}

#[test]
fn check_grammar_runs_on_an_embedded_spec() {
    run_example("check_grammar", &["crates/ipg-formats/specs/gif.ipg"]);
}
