//! Offline stand-in for the [`rustc-hash`](https://crates.io/crates/rustc-hash)
//! / `fxhash` crates.
//!
//! The build environment has no network access, so the workspace vendors the
//! Firefox hash function ("FxHash"): a non-cryptographic, multiply-and-rotate
//! hash that is much cheaper than SipHash for the short structured keys the
//! interpreter's memo table uses (`(NtId, usize, usize)` triples). It provides
//! the subset of the real crates' API the workspace needs: [`FxHasher`],
//! [`FxBuildHasher`], and the [`FxHashMap`] / [`FxHashSet`] aliases.
//!
//! FxHash is *not* DoS-resistant; it is only appropriate for keys an attacker
//! does not control, which holds for memo keys (nonterminal ids and input
//! offsets are bounded by grammar and input size).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier from the Firefox/rustc implementation (a 64-bit constant
/// derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A [`Hasher`] implementing the Firefox hash.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (chunk, rest) = bytes.split_at(8);
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (chunk, rest) = bytes.split_at(4);
            self.add_to_hash(u64::from(u32::from_le_bytes(chunk.try_into().expect("4 bytes"))));
            bytes = rest;
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A [`std::hash::BuildHasher`] producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using FxHash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using FxHash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_and_input_sensitive() {
        assert_eq!(hash_of(b"hello"), hash_of(b"hello"));
        assert_ne!(hash_of(b"hello"), hash_of(b"hellp"));
        assert_ne!(hash_of(b"a"), hash_of(b"b"));
    }

    #[test]
    fn mixed_width_writes_do_not_collide_trivially() {
        let mut a = FxHasher::default();
        a.write_u32(7);
        a.write_usize(13);
        a.write_usize(64);
        let mut b = FxHasher::default();
        b.write_u32(7);
        b.write_usize(64);
        b.write_usize(13);
        assert_ne!(a.finish(), b.finish(), "order must matter");
    }

    #[test]
    fn map_alias_works_with_tuple_keys() {
        let mut m: FxHashMap<(u32, usize, usize), i64> = FxHashMap::default();
        m.insert((1, 2, 3), 42);
        m.insert((1, 3, 2), 43);
        assert_eq!(m.get(&(1, 2, 3)), Some(&42));
        assert_eq!(m.get(&(1, 3, 2)), Some(&43));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn set_alias_works() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(!s.insert(9));
    }
}
