//! Sampling strategies, mirroring `proptest::sample`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy choosing one element of a fixed list.
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len())].clone()
    }
}

/// Mirrors `proptest::sample::select`.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}
