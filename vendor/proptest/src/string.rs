//! String generation from the regex-like patterns proptest accepts as
//! strategies.
//!
//! Supported subset (everything the workspace's test suites use):
//!
//! * `[<class>]{m,n}` — a character class of literals and `a-z` ranges,
//!   repeated between `m` and `n` times.
//! * `\PC{m,n}` — any non-control character, repeated between `m` and `n`
//!   times.
//!
//! Unrecognized patterns fall back to being emitted literally, which keeps
//! the harness total (a property test would then fail loudly rather than
//! generate confusing data silently).

use crate::test_runner::TestRng;

enum CharClass {
    /// Explicit candidate set from a `[...]` class.
    Set(Vec<char>),
    /// `\PC`: any non-control scalar value.
    Printable,
}

impl CharClass {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            CharClass::Set(chars) => chars[rng.below(chars.len())],
            CharClass::Printable => loop {
                // Bias toward ASCII so generated text exercises ordinary
                // grammar syntax, while still covering wider Unicode.
                let c = if rng.next_u64() & 3 != 0 {
                    (0x20u8 + rng.below(0x5f) as u8) as char
                } else {
                    match char::from_u32(rng.below(0x11_0000) as u32) {
                        Some(c) => c,
                        None => continue,
                    }
                };
                if !c.is_control() {
                    return c;
                }
            },
        }
    }
}

fn parse_class(pattern: &str) -> Option<(CharClass, &str)> {
    if let Some(rest) = pattern.strip_prefix("\\PC") {
        return Some((CharClass::Printable, rest));
    }
    let rest = pattern.strip_prefix('[')?;
    let end = rest.find(']')?;
    let (body, rest) = (&rest[..end], &rest[end + 1..]);
    let mut chars = Vec::new();
    let body: Vec<char> = body.chars().collect();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            for code in lo as u32..=hi as u32 {
                chars.extend(char::from_u32(code));
            }
            i += 3;
        } else {
            chars.push(body[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    Some((CharClass::Set(chars), rest))
}

fn parse_repeat(pattern: &str) -> Option<(usize, usize, &str)> {
    let rest = pattern.strip_prefix('{')?;
    let end = rest.find('}')?;
    let (body, rest) = (&rest[..end], &rest[end + 1..]);
    let (min, max) = match body.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = body.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((min, max, rest))
}

/// Generates a string matching `pattern` (see module docs for the subset).
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let Some((class, rest)) = parse_class(pattern) else {
        return pattern.to_owned();
    };
    let (min, max, rest) = match parse_repeat(rest) {
        Some((min, max, rest)) => (min, max, rest),
        None => (1, 1, rest),
    };
    if !rest.is_empty() || min > max {
        return pattern.to_owned();
    }
    let len = min + if max == min { 0 } else { rng.below(max - min + 1) };
    (0..len).map(|_| class.sample(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charset_pattern_respects_class_and_length() {
        let mut rng = TestRng::deterministic("charset", 0);
        for case in 0..200 {
            let mut rng2 = TestRng::deterministic("charset", case);
            let s = generate_from_pattern("[a-zA-Z0-9 .!-]{0,8}", &mut rng2);
            assert!(s.chars().count() <= 8, "{s:?}");
            for c in s.chars() {
                assert!(c.is_ascii_alphanumeric() || " .!-".contains(c), "unexpected char {c:?}");
            }
        }
        let s = generate_from_pattern("[abc]{3}", &mut rng);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn printable_pattern_never_emits_control_chars() {
        for case in 0..200 {
            let mut rng = TestRng::deterministic("printable", case);
            let s = generate_from_pattern("\\PC{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn unknown_patterns_fall_back_to_literal() {
        let mut rng = TestRng::deterministic("literal", 0);
        assert_eq!(generate_from_pattern("plain", &mut rng), "plain");
    }
}
