//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal property-testing harness implementing the `proptest` API surface
//! the test suites use: the [`proptest!`] macro, the [`strategy::Strategy`]
//! trait with `prop_map`/`prop_recursive`/`boxed`, [`prop_oneof!`],
//! [`arbitrary::any`], numeric-range and string-pattern strategies, and the
//! `collection::vec` / `option::of` / `sample::select` constructors.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case fails with its concrete inputs; it is
//!   not minimized. Generation is fully deterministic (seeded per test name
//!   and case index), so failures are reproducible run-to-run.
//! * **String "regex" strategies** support the subset the suites use: a
//!   single `[...]` character class or `\PC` (any non-control character),
//!   followed by a `{min,max}` repetition.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use test_runner::ProptestConfig;

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors the `prop` module alias exposed by `proptest::prelude`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn` runs its body for `cases` deterministic
/// samples of its `in`-bound arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// One-of strategy choice: picks one branch uniformly per sample.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Mirrors `proptest::prop_assert!` (fails the current case by panicking).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Mirrors `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}
