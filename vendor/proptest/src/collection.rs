//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max_exclusive: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.max_exclusive - self.min;
        let len = self.min + if span == 0 { 0 } else { rng.below(span) };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A vector strategy with length in `size` (half-open), mirroring
/// `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "cannot sample empty size range");
    VecStrategy { element, min: size.start, max_exclusive: size.end }
}
