//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is simply a deterministic sampler over a seeded RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for the
    /// levels below and returns the strategy for one level up. `depth` bounds
    /// the nesting; the size hints of real proptest are accepted and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(strat.clone()).boxed();
            // Each level flips between staying shallow and recursing once
            // more, so generated values span all depths up to the bound.
            strat = Union::new(vec![strat, deeper]).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Maps another strategy's output through a function.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Chooses uniformly among several strategies of the same value type.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be nonempty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "Union requires at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { options: self.options.clone() }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
