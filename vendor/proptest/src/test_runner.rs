//! Deterministic RNG and per-test configuration.

/// Per-test configuration, mirroring `proptest::test_runner::Config` as
/// re-exported under the name `ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// SplitMix64 generator seeded from the test's module path and case index,
/// so every case is reproducible run-to-run without persisted failure files.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an FNV-1a hash of `name` mixed with the case index.
    pub fn deterministic(name: &str, case: u32) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    /// Returns the next 64-bit word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
