//! The [`Arbitrary`] trait and [`any`], mirroring `proptest::arbitrary`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one uniformly distributed value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Strategy generating arbitrary values of `T` (the result of [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        // Mirror proptest's bias toward ASCII (interesting for text-handling
        // code) while still exercising the full scalar-value range.
        if rng.next_u64() & 1 == 0 {
            (0x20u8 + rng.below(0x5f) as u8) as char
        } else {
            loop {
                if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                    return c;
                }
            }
        }
    }
}
