//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal harness implementing the criterion API surface the `bench` crate
//! uses: [`Criterion`] with `benchmark_group`, groups with
//! `throughput`/`bench_function`/`bench_with_input`/`finish`, [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: per benchmark it warms up for the
//! configured warm-up time, then runs timed batches until the measurement
//! time elapses, and reports the mean wall-clock time per iteration (plus
//! throughput when configured). There is no statistical analysis, HTML
//! report, or baseline comparison — the point is that `cargo bench` compiles,
//! runs, and prints comparable numbers without external dependencies.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness state, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_millis(1500),
            sample_size: 50,
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark warm-up time.
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.warm_up_time = duration;
        self
    }

    /// Sets the per-benchmark measurement time.
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement_time = duration;
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, size: usize) -> Self {
        self.sample_size = size;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }
}

/// Identifies one benchmark within a group (`<function>/<parameter>`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A group of related benchmarks sharing throughput configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rates for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), &mut routine);
        self
    }

    /// Benchmarks `routine` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, &mut |b: &mut Bencher| routine(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op marker).
    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, routine: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up_time: self.criterion.warm_up_time,
            measurement_time: self.criterion.measurement_time,
            sample_size: self.criterion.sample_size.max(1),
            mean: Duration::ZERO,
        };
        routine(&mut bencher);
        let mean = bencher.mean;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if !mean.is_zero() => {
                let gib_per_s = n as f64 / mean.as_secs_f64() / (1u64 << 30) as f64;
                format!(" thrpt: {gib_per_s:>9.3} GiB/s")
            }
            Some(Throughput::Elements(n)) if !mean.is_zero() => {
                let elem_per_s = n as f64 / mean.as_secs_f64();
                format!(" thrpt: {elem_per_s:>12.0} elem/s")
            }
            _ => String::new(),
        };
        println!("{}/{:<40} time: {}{}", self.name, self.id_suffix(&id), format_time(mean), rate);
    }

    fn id_suffix(&self, id: &BenchmarkId) -> String {
        id.id.clone()
    }
}

/// Timing loop handle passed to benchmark routines.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    mean: Duration,
}

impl Bencher {
    /// Times `routine`, storing the mean wall-clock duration per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also estimates the per-iteration cost so the measurement
        // phase can pick a batch size with low timer overhead.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters);

        let budget = self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let batch = (budget / per_iter.max(1)).clamp(1, 1_000_000) as u64;

        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measurement_time {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.mean = if iters == 0 { Duration::ZERO } else { total / iters as u32 };
    }
}

/// Prevents the compiler from optimizing a value away (re-export shim).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn format_time(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:>9.3} s ", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:>9.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:>9.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos:>9} ns")
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main` running the listed groups (for `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags such as `--bench`; this
            // harness has no modes, so flags are accepted and ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_nonzero_mean() {
        let mut criterion = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        let mut group = criterion.benchmark_group("smoke");
        group.throughput(Throughput::Bytes(1024));
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("work", 1), &vec![1u8; 1024], |b, input| {
            b.iter(|| input.iter().map(|&x| x as u64).sum::<u64>());
            ran = true;
        });
        group.bench_function("fn_form", |b| b.iter(|| 2 + 2));
        group.finish();
        assert!(ran);
    }
}
