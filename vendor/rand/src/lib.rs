//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors a minimal, dependency-free implementation of exactly the
//! `rand` 0.9 API surface the corpus generators use: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `random`,
//! `random_range`, and `fill`.
//!
//! The generator is SplitMix64 — not cryptographically secure, but fast,
//! well distributed, and fully deterministic per seed, which is all the
//! synthetic-corpus generators require (`ipg-corpus` promises byte-identical
//! output for identical seeds).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.fill_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be sampled uniformly over their whole domain.
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Buffers that can be filled with random data.
pub trait Fill {
    /// Overwrites `self` with random data from `rng`.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for chunk in self.chunks_mut(8) {
            let word = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u8 = r.random_range(0..26u8);
            assert!(v < 26);
            let w: u16 = r.random_range(1024..=u16::MAX);
            assert!(w >= 1024);
            let f: f64 = r.random_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let n: usize = r.random_range(2..=4);
            assert!((2..=4).contains(&n));
        }
    }

    #[test]
    fn fill_covers_every_byte() {
        let mut r = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 37];
        r.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
