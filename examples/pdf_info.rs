//! PDF-subset inspector showing the paper's two trickiest patterns (§4.3):
//! backward parsing of the `startxref` offset and xref-driven random
//! access to objects.
//!
//! ```sh
//! cargo run --example pdf_info                # inspects a synthetic file
//! cargo run --example pdf_info -- simple.pdf  # files in the supported subset
//! ```

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bytes = match std::env::args().nth(1) {
        Some(path) => std::fs::read(path)?,
        None => {
            println!("(no file given — using a generated sample)\n");
            ipg_corpus::pdf::generate(&ipg_corpus::pdf::Config {
                n_objects: 4,
                stream_len: 120,
                ..Default::default()
            })
            .bytes
        }
    };

    let doc = ipg_formats::pdf::parse(&bytes)?;
    println!("xref table at offset {} (found by scanning backward from %%EOF)", doc.xref_offset);
    println!(
        "{} xref entries (incl. the free entry), {} objects:",
        doc.xref_count,
        doc.objects.len()
    );
    for obj in &doc.objects {
        println!(
            "  obj {:>3} at {:>6}: /Length {:>5}, stream at {}..{}",
            obj.id, obj.offset, obj.stream_len, obj.stream.0, obj.stream.1
        );
    }
    Ok(())
}
