//! `readelf`-style inspector built on the IPG ELF grammar (§4.1).
//!
//! ```sh
//! cargo run --example elf_inspect            # inspects a synthetic file
//! cargo run --example elf_inspect -- a.elf   # inspects a real ELF64-LE file
//! ```

use ipg_formats::elf::{parse, SectionKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bytes = match std::env::args().nth(1) {
        Some(path) => std::fs::read(path)?,
        None => {
            let file = ipg_corpus::elf::generate(&ipg_corpus::elf::Config {
                n_sections: 3,
                n_symbols: 6,
                ..Default::default()
            });
            println!("(no file given — inspecting a generated sample)\n");
            file.bytes
        }
    };

    let elf = parse(&bytes)?;
    println!("Section header table at {:#x}, {} entries", elf.shoff, elf.shnum);
    println!("{:<4} {:<20} {:>6} {:>10} {:>8}", "idx", "name", "type", "offset", "size");
    for (i, s) in elf.sections.iter().enumerate() {
        println!(
            "{:<4} {:<20} {:>6} {:>10} {:>8}",
            i,
            s.name.as_deref().unwrap_or("<none>"),
            s.sh_type,
            s.offset,
            s.size
        );
    }
    for s in &elf.sections {
        match &s.kind {
            SectionKind::Symbols(symbols) => {
                println!("\nSymbol table `{}`:", s.name.as_deref().unwrap_or("?"));
                for sym in symbols {
                    println!(
                        "  {:#010x} {:>5} {}",
                        sym.value,
                        sym.size,
                        sym.name.as_deref().unwrap_or("<noname>")
                    );
                }
            }
            SectionKind::Dynamic(entries) => {
                println!("\nDynamic section `{}`:", s.name.as_deref().unwrap_or("?"));
                for (tag, value) in entries {
                    println!("  tag {tag:#06x} value {value:#x}");
                }
            }
            _ => {}
        }
    }
    Ok(())
}
