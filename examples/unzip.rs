//! `unzip` built on the IPG ZIP grammar with the DEFLATE blackbox (the
//! §3.4/§7 zlib-as-blackbox pattern, zlib replaced by `ipg-flate`).
//!
//! ```sh
//! cargo run --example unzip                     # lists a synthetic archive
//! cargo run --example unzip -- archive.zip      # lists a real archive
//! cargo run --example unzip -- archive.zip out/ # extracts it
//! ```

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let bytes = match args.next() {
        Some(path) => std::fs::read(path)?,
        None => {
            println!("(no archive given — using a generated sample)\n");
            ipg_corpus::zip::generate(&ipg_corpus::zip::Config {
                n_entries: 3,
                payload_len: 600,
                ..Default::default()
            })
            .bytes
        }
    };
    let out_dir = args.next();

    // Structure first (zero-copy), like `unzip -l`.
    let archive = ipg_formats::zip::parse(&bytes)?;
    println!("{:>10} {:>10} {:>10}  name", "method", "packed", "size");
    for e in &archive.entries {
        println!(
            "{:>10} {:>10} {:>10}  {}",
            if e.method == 8 { "deflate" } else { "stored" },
            e.compressed_size,
            e.uncompressed_size,
            e.name
        );
    }

    // Then contents, through the blackbox grammar (CRC-checked).
    let files = ipg_formats::zip::extract(&bytes)?;
    match out_dir {
        Some(dir) => {
            std::fs::create_dir_all(&dir)?;
            for (name, data) in &files {
                let path = std::path::Path::new(&dir).join(name);
                if let Some(parent) = path.parent() {
                    std::fs::create_dir_all(parent)?;
                }
                std::fs::write(&path, data)?;
                println!("extracted {} ({} bytes)", path.display(), data.len());
            }
        }
        None => {
            for (name, data) in &files {
                println!(
                    "{}: {} bytes, starts {:?}",
                    name,
                    data.len(),
                    String::from_utf8_lossy(&data[..data.len().min(24)])
                );
            }
        }
    }
    Ok(())
}
