//! `ipg_parse` — parse a file (or stdin) with a named corpus grammar and
//! pretty-print the resulting tree.
//!
//! Usage:
//!
//! ```text
//! cargo run --example ipg_parse -- <grammar> [FILE | -] [--depth N]
//! ```
//!
//! * `<grammar>` — one of the nine corpus grammars (`zip`, `zip_inflate`,
//!   `dns`, `png`, `gif`, `elf`, `ipv4udp`, `pe`, `pdf`).
//! * `FILE` — input path. `-` reads stdin *through the streaming session*
//!   (chunked feeds, exactly the parse a server would run as bytes arrive
//!   off the wire). With neither, a small self-generated corpus input is
//!   parsed, so the example runs standalone.
//! * `--depth N` — pretty-printer depth limit (default 4).

use ipg_core::check::Grammar;
use ipg_core::interp::vm::{Outcome, VmParser};
use ipg_core::tree::Tree;
use std::io::{Read, Write as _};
use std::rc::Rc;

fn usage() -> ! {
    eprintln!("usage: ipg_parse <grammar> [FILE | -] [--depth N]");
    eprintln!("grammars: {}", names().join(", "));
    std::process::exit(2);
}

fn names() -> Vec<&'static str> {
    ipg_formats::all_vms().into_iter().map(|(n, _)| n).collect()
}

fn self_generated(grammar: &str) -> Vec<u8> {
    match grammar {
        "zip" | "zip_inflate" => ipg_corpus::zip::generate(&Default::default()).bytes,
        "dns" => ipg_corpus::dns::generate(&Default::default()).bytes,
        "png" => ipg_corpus::png::generate(&Default::default()).bytes,
        "gif" => ipg_corpus::gif::generate(&Default::default()).bytes,
        "elf" => ipg_corpus::elf::generate(&Default::default()).bytes,
        "ipv4udp" => ipg_corpus::ipv4udp::generate(&Default::default()).bytes,
        "pe" => ipg_corpus::pe::generate(&Default::default()).bytes,
        "pdf" => ipg_corpus::pdf::generate(&Default::default()).bytes,
        _ => usage(),
    }
}

/// Streams stdin through a [`ipg_core::interp::vm::Session`] in 4 KiB
/// chunks, reporting the suspension count the parse accumulated.
fn parse_stdin(vm: &VmParser<'_>) -> (Rc<Tree>, u64, usize) {
    let mut session = vm.streaming();
    let mut stdin = std::io::stdin().lock();
    let mut buf = [0u8; 4096];
    loop {
        let n = stdin.read(&mut buf).expect("read stdin");
        if n == 0 {
            break;
        }
        if let Outcome::Error(e) = session.feed(&buf[..n]) {
            eprintln!("parse failed mid-stream: {e}");
            std::process::exit(1);
        }
    }
    let buffered = session.buffered();
    let suspends = session.suspends();
    match session.finish() {
        Outcome::Done(tree) => (tree.root().to_tree(), suspends, buffered),
        Outcome::Error(e) => {
            eprintln!("parse failed: {e}");
            std::process::exit(1);
        }
        Outcome::NeedInput { .. } => unreachable!("finish never needs input"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut grammar_name = None;
    let mut input_arg = None;
    let mut depth = 4usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--depth" => depth = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            other if grammar_name.is_none() => grammar_name = Some(other.to_owned()),
            other if input_arg.is_none() => input_arg = Some(other.to_owned()),
            _ => usage(),
        }
    }
    let Some(grammar_name) = grammar_name else { usage() };
    let Some((_, vm)) = ipg_formats::all_vms().into_iter().find(|(n, _)| *n == grammar_name) else {
        eprintln!("unknown grammar `{grammar_name}`");
        usage()
    };
    let grammar = ipg_formats::all_grammars()
        .into_iter()
        .find(|(n, _)| *n == grammar_name)
        .expect("registries agree")
        .1;

    let (tree, suspends, bytes, source) = match input_arg.as_deref() {
        Some("-") => {
            let (tree, suspends, bytes) = parse_stdin(vm);
            (tree, suspends, bytes, "stdin (streamed)".to_owned())
        }
        Some(path) => {
            let input = std::fs::read(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            let tree = one_shot(vm, &input);
            (tree, 0, input.len(), path.to_owned())
        }
        None => {
            let input = self_generated(&grammar_name);
            let tree = one_shot(vm, &input);
            (tree, 0, input.len(), "self-generated corpus input".to_owned())
        }
    };

    // Write-based so a downstream `| head` closing the pipe ends the
    // dump quietly instead of panicking on EPIPE.
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let dump = writeln!(
        out,
        "{grammar_name}: parsed {bytes} bytes from {source} ({}, {suspends} suspensions)",
        vm.anchor()
    )
    .and_then(|()| print_tree(&mut out, &tree, grammar, 0, depth))
    .and_then(|()| out.flush());
    if let Err(e) = dump {
        if e.kind() != std::io::ErrorKind::BrokenPipe {
            eprintln!("cannot write output: {e}");
            std::process::exit(1);
        }
    }
}

fn one_shot(vm: &VmParser<'_>, input: &[u8]) -> Rc<Tree> {
    match vm.parse(input) {
        Ok(tree) => tree.root().to_tree(),
        Err(e) => {
            eprintln!("parse failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Depth- and width-limited tree dump: nonterminals with their user
/// attributes and spans, arrays summarized, leaves as byte spans.
fn print_tree(
    out: &mut impl std::io::Write,
    tree: &Tree,
    g: &Grammar,
    indent: usize,
    max_depth: usize,
) -> std::io::Result<()> {
    const MAX_CHILDREN: usize = 8;
    let pad = "  ".repeat(indent);
    if indent >= max_depth {
        return writeln!(out, "{pad}…");
    }
    match tree {
        Tree::Node(n) => {
            let attrs: Vec<String> = n
                .env
                .iter()
                .filter(|(sym, _)| g.attr_name(*sym) != "EOI")
                .map(|(sym, v)| format!("{}={v}", g.attr_name(sym)))
                .collect();
            writeln!(
                out,
                "{pad}{} [{}..{}] {{{}}}",
                n.name,
                n.base,
                n.base + n.input_len,
                attrs.join(", ")
            )?;
            for child in n.children.iter().take(MAX_CHILDREN) {
                print_tree(out, child, g, indent + 1, max_depth)?;
            }
            if n.children.len() > MAX_CHILDREN {
                writeln!(out, "{pad}  … {} more children", n.children.len() - MAX_CHILDREN)?;
            }
        }
        Tree::Array(a) => {
            writeln!(out, "{pad}{}[] ({} elements)", a.name, a.elems.len())?;
            for elem in a.elems.iter().take(MAX_CHILDREN) {
                print_tree(out, elem, g, indent + 1, max_depth)?;
            }
            if a.elems.len() > MAX_CHILDREN {
                writeln!(out, "{pad}  … {} more elements", a.elems.len() - MAX_CHILDREN)?;
            }
        }
        Tree::Leaf(l) => {
            writeln!(out, "{pad}\"…\" [{}..{}]", l.start, l.end)?;
        }
        Tree::Blackbox(b) => {
            writeln!(
                out,
                "{pad}{} (blackbox, {} bytes decoded) [{}..{}]",
                b.name,
                b.data.len(),
                b.base,
                b.base + b.input_len
            )?;
        }
    }
    Ok(())
}
