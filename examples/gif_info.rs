//! GIF metadata dumper built on the IPG GIF grammar (§4.2).
//!
//! ```sh
//! cargo run --example gif_info                 # inspects a synthetic image
//! cargo run --example gif_info -- picture.gif  # inspects a real image
//! ```

use ipg_formats::gif::{parse, GifBlock};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bytes = match std::env::args().nth(1) {
        Some(path) => std::fs::read(path)?,
        None => {
            println!("(no image given — using a generated sample)\n");
            ipg_corpus::gif::generate(&ipg_corpus::gif::Config {
                n_frames: 2,
                width: 64,
                height: 48,
                ..Default::default()
            })
            .bytes
        }
    };

    let gif = parse(&bytes)?;
    println!("logical screen: {}x{}", gif.width, gif.height);
    println!(
        "global color table: {}",
        if gif.has_gct { format!("{} bytes", gif.gct_len) } else { "none".into() }
    );
    println!("{} top-level blocks, {} frames:", gif.blocks.len(), gif.n_frames());
    for (i, block) in gif.blocks.iter().enumerate() {
        match block {
            GifBlock::Extension { label, data_len } => {
                let kind = match label {
                    0xf9 => "graphic control",
                    0xfe => "comment",
                    0x01 => "plain text",
                    0xff => "application",
                    _ => "unknown",
                };
                println!("  [{i}] extension {kind} (label {label:#04x}, {data_len} data bytes)");
            }
            GifBlock::Image { width, height, data_len } => {
                println!("  [{i}] image {width}x{height}, {data_len} bytes of LZW data");
            }
        }
    }
    Ok(())
}
