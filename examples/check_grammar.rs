//! Grammar toolchain driver: parse a `.ipg` file, run attribute checking
//! and the §5 termination checker, and optionally emit a standalone Rust
//! parser (the §7 parser generator).
//!
//! ```sh
//! cargo run --example check_grammar -- crates/ipg-formats/specs/gif.ipg
//! cargo run --example check_grammar -- crates/ipg-formats/specs/gif.ipg --emit-rust out.rs
//! ```

use ipg_core::frontend::{interval_stats, parse_grammar, parse_surface};
use ipg_core::termination::check_termination;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: check_grammar <spec.ipg> [--emit-rust <out.rs>]");
        std::process::exit(2);
    };
    let src = std::fs::read_to_string(&path)?;

    let surface = parse_surface(&src)?;
    let stats = interval_stats(&surface);
    println!(
        "{path}: {} rules, {} intervals ({} fully inferred, {} length-only, {} explicit)",
        surface.rules.len(),
        stats.total,
        stats.fully_inferred,
        stats.length_only,
        stats.explicit()
    );

    let grammar = parse_grammar(&src)?;
    println!("attribute checking: ok (start nonterminal `{}`)", grammar.start_nt_name());

    let report = check_termination(&grammar);
    println!(
        "termination: {} — {} elementary cycle(s) in {:.2?}",
        if report.ok { "proved" } else { "NOT proved" },
        report.cycle_count(),
        report.elapsed
    );
    for cycle in &report.cycles {
        println!(
            "  cycle {}: {}",
            cycle.nonterminals.join(" → "),
            if cycle.decreasing { "decreasing" } else { "not refuted" }
        );
    }

    let stream = ipg_core::analysis::stream_analysis(&grammar);
    println!(
        "streamability: {}",
        if stream.streamable { "single-pass parser possible" } else { "needs random access" }
    );
    for rule in stream.rules.iter().filter(|r| !r.streamable).take(5) {
        println!("  {} blocked: {}", rule.name, rule.blockers.join("; "));
    }

    if args.next().as_deref() == Some("--emit-rust") {
        let out = args.next().unwrap_or_else(|| "generated_parser.rs".to_owned());
        let code = ipg_core::codegen::generate_rust(&grammar)?;
        std::fs::write(&out, &code)?;
        println!(
            "wrote generated recursive-descent parser to {out} ({} lines)",
            code.lines().count()
        );
    }
    Ok(())
}
