//! DNS message dumper built on the IPG DNS grammar — shows the counted
//! sections (recursive local rules) and compression-pointer handling.
//!
//! ```sh
//! cargo run --example dns_dump                # dumps a synthetic response
//! cargo run --example dns_dump -- packet.bin  # dumps a raw DNS message
//! ```

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bytes = match std::env::args().nth(1) {
        Some(path) => std::fs::read(path)?,
        None => {
            println!("(no packet given — using a generated sample)\n");
            ipg_corpus::dns::generate(&ipg_corpus::dns::Config {
                n_questions: 1,
                n_answers: 3,
                compress: true,
                seed: 11,
            })
            .bytes
        }
    };

    let msg = ipg_formats::dns::parse(&bytes)?;
    println!("id {:#06x}, flags {:#06x}", msg.id, msg.flags);
    println!("questions:");
    for q in &msg.questions {
        println!("  {} (type {}, class {})", q.name, q.qtype, q.qclass);
    }
    println!("answers:");
    for a in &msg.answers {
        let rdata = &bytes[a.rdata.0..a.rdata.1];
        let value = if a.rtype == 1 && rdata.len() == 4 {
            format!("{}.{}.{}.{}", rdata[0], rdata[1], rdata[2], rdata[3])
        } else {
            format!("{rdata:02x?}")
        };
        println!("  {} → {} (ttl {})", a.name, value, a.ttl);
    }
    Ok(())
}
