//! Quickstart: the paper's running examples in a few lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ipg_core::frontend::parse_grammar;
use ipg_core::interp::Parser;
use ipg_core::termination::check_termination;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 2 of the paper: the random access pattern. A header stores the
    // offset and length of a data region; the grammar follows them.
    let grammar = parse_grammar(
        r#"
        S -> H[0, 8] Data[H.offset, H.offset + H.length];
        H -> Int[0, 4] {offset = Int.val} Int[4, 8] {length = Int.val};
        Int := u32le;
        Data := bytes;
        "#,
    )?;

    // A little input file: offset = 10, length = 4, data at 10..14.
    let mut input = Vec::new();
    input.extend_from_slice(&10u32.to_le_bytes());
    input.extend_from_slice(&4u32.to_le_bytes());
    input.extend_from_slice(b"..DATA++");

    let tree = Parser::new(&grammar).parse(&input)?;
    // Child lookups go through interned symbols: resolve the name once,
    // then compare symbols (the only lookup API the tree exposes).
    let h_sym = grammar.nt_sym("H").expect("H is a rule");
    let data_sym = grammar.nt_sym("Data").expect("Data is a rule");
    let header = tree.child_node_sym(h_sym).expect("header parsed");
    let data = tree.child_node_sym(data_sym).expect("data parsed");
    println!("H.offset = {:?}", header.attr(&grammar, "offset"));
    println!("H.length = {:?}", header.attr(&grammar, "length"));
    println!("Data spans input[{}..{}]", data.span().0, data.span().1);
    println!("Data bytes = {:?}", String::from_utf8_lossy(&input[data.span().0..data.span().1]));

    // Fig. 3: the binary number parser — left recursion bounded by
    // shrinking intervals, so plain recursive descent terminates.
    let binary = parse_grammar(
        r#"
        start Int;
        Int -> Int[0, EOI - 1] Digit[EOI - 1, EOI] {val = 2 * Int.val + Digit.val}
             / Digit[0, 1] {val = Digit.val};
        Digit -> "0"[0, 1] {val = 0} / "1"[0, 1] {val = 1};
        "#,
    )?;
    let tree = Parser::new(&binary).parse(b"101101")?;
    println!("binary 101101 = {:?}", tree.as_node().expect("node").attr(&binary, "val"));

    // And the static termination check of §5.
    let report = check_termination(&binary);
    println!(
        "termination: {} ({} elementary cycle(s), checked in {:.2?})",
        if report.ok { "proved" } else { "unknown" },
        report.cycle_count(),
        report.elapsed
    );
    Ok(())
}
