//! Umbrella crate for the IPG reproduction workspace.
//!
//! This crate exists to host the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`. The actual library code lives
//! in the workspace crates:
//!
//! * [`ipg_core`] — the IPG language: syntax, checking, interpretation,
//!   code generation, termination checking, and interval combinators.
//! * [`ipg_formats`] — IPG specifications and typed extractors for ZIP, GIF,
//!   ELF, PE, PDF (subset), IPv4+UDP and DNS.
//! * [`ipg_flate`] — a from-scratch DEFLATE codec used as the blackbox
//!   decompressor for ZIP.
//! * [`ipg_baselines`] — hand-written, Kaitai-style and Nail-style baseline
//!   parsers plus the counting allocator used for memory experiments.
//! * [`ipg_corpus`] — deterministic synthetic file/packet generators.

pub use ipg_baselines;
pub use ipg_core;
pub use ipg_corpus;
pub use ipg_flate;
pub use ipg_formats;
